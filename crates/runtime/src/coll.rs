//! Collectives built on point-to-point (dissemination barrier, binomial
//! reduce/broadcast).
//!
//! As in MPI, collectives must be invoked in the same order by every rank
//! of the communicator, and by at most one thread per rank at a time. All
//! collective traffic travels on the runtime-internal communicator so it
//! can never match user receives.

use crate::errors::MpiError;
use crate::types::{CommId, MsgData, Tag, RESERVED_TAG_BASE};
use crate::world::RankHandle;

const BARRIER_TAG: Tag = RESERVED_TAG_BASE;
const REDUCE_TAG: Tag = RESERVED_TAG_BASE + 64;
const BCAST_TAG: Tag = RESERVED_TAG_BASE + 128;

impl RankHandle {
    /// Dissemination barrier over all ranks: ⌈log₂ n⌉ rounds, each rank
    /// sending to `(rank + 2^k) mod n` and receiving from
    /// `(rank − 2^k) mod n`. Panics on timeout/unreachable peer — see
    /// [`Self::try_barrier`].
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible dissemination barrier: surfaces the typed error instead
    /// of panicking when a peer never shows up or fault recovery gives
    /// up.
    pub fn try_barrier(&self) -> Result<(), MpiError> {
        let n = self.nranks();
        if n == 1 {
            return Ok(());
        }
        let me = self.rank();
        let mut k = 0;
        let mut dist = 1u32;
        while dist < n {
            let dst = (me + dist) % n;
            let src = (me + n - dist % n) % n;
            let internal = self.comm(CommId::INTERNAL);
            let s = internal.isend(dst, BARRIER_TAG + k, MsgData::Synthetic(0));
            let m = internal.try_recv(Some(src), Some(BARRIER_TAG + k))?;
            debug_assert_eq!(m.src, src);
            self.try_wait(s)?;
            dist *= 2;
            k += 1;
        }
        Ok(())
    }

    /// Binomial-tree reduction to rank 0 followed by a binomial broadcast,
    /// combining byte payloads with `combine`.
    fn allreduce_bytes(&self, value: Vec<u8>, combine: &dyn Fn(&mut Vec<u8>, &[u8])) -> Vec<u8> {
        self.try_allreduce_bytes(value, combine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_allreduce_bytes(
        &self,
        mut value: Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
    ) -> Result<Vec<u8>, MpiError> {
        let n = self.nranks();
        if n == 1 {
            return Ok(value);
        }
        let me = self.rank();
        // Reduce: at round k, ranks with bit k set send to rank - 2^k.
        let mut dist = 1u32;
        while dist < n {
            if me & dist != 0 {
                // Sender: ship partial and leave the reduction.
                self.comm(CommId::INTERNAL).try_send(
                    me - dist,
                    REDUCE_TAG,
                    MsgData::Bytes(value),
                )?;
                value = Vec::new();
                break;
            } else if me + dist < n {
                let m = self
                    .comm(CommId::INTERNAL)
                    .try_recv(Some(me + dist), Some(REDUCE_TAG))?;
                combine(&mut value, m.data.as_bytes());
            }
            dist *= 2;
        }
        // Broadcast the result down the same tree.
        self.try_bcast_internal(value, me, n)
    }

    fn try_bcast_internal(&self, mut value: Vec<u8>, me: u32, n: u32) -> Result<Vec<u8>, MpiError> {
        // Find this rank's level: lowest set bit (root handles dist from
        // the top).
        let mut dist = 1u32;
        while dist < n {
            dist *= 2;
        }
        dist /= 2;
        if me != 0 {
            let lsb = me & me.wrapping_neg();
            let m = self
                .comm(CommId::INTERNAL)
                .try_recv(Some(me - lsb), Some(BCAST_TAG))?;
            value = m.data.into_bytes();
            dist = lsb / 2;
        }
        while dist >= 1 {
            let dst = me + dist;
            if dst < n && me.is_multiple_of(dist * 2) {
                self.comm(CommId::INTERNAL).try_send(
                    dst,
                    BCAST_TAG,
                    MsgData::Bytes(value.clone()),
                )?;
            }
            if dist == 1 {
                break;
            }
            dist /= 2;
        }
        Ok(value)
    }

    /// Broadcast bytes from rank 0 to all ranks; every rank passes its
    /// local buffer (ignored except at the root) and receives the root's.
    pub fn bcast_from_root(&self, value: Vec<u8>) -> Vec<u8> {
        let n = self.nranks();
        if n == 1 {
            return value;
        }
        self.try_bcast_internal(value, self.rank(), n)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// All-reduce: sum of `f64`.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        let out = self.allreduce_bytes(v.to_le_bytes().to_vec(), &|acc, other| {
            let a = f64::from_le_bytes(acc[..8].try_into().expect("8 bytes"));
            let b = f64::from_le_bytes(other[..8].try_into().expect("8 bytes"));
            acc[..8].copy_from_slice(&(a + b).to_le_bytes());
        });
        f64::from_le_bytes(out[..8].try_into().expect("8 bytes"))
    }

    /// All-reduce: sum of `u64`.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        let out = self.allreduce_bytes(v.to_le_bytes().to_vec(), &|acc, other| {
            let a = u64::from_le_bytes(acc[..8].try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(other[..8].try_into().expect("8 bytes"));
            acc[..8].copy_from_slice(&(a + b).to_le_bytes());
        });
        u64::from_le_bytes(out[..8].try_into().expect("8 bytes"))
    }

    /// All-reduce: max of `u64`.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        let out = self.allreduce_bytes(v.to_le_bytes().to_vec(), &|acc, other| {
            let a = u64::from_le_bytes(acc[..8].try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(other[..8].try_into().expect("8 bytes"));
            acc[..8].copy_from_slice(&a.max(b).to_le_bytes());
        });
        u64::from_le_bytes(out[..8].try_into().expect("8 bytes"))
    }
}
