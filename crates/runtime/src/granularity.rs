//! Critical-section granularity modes (paper Fig 1, §7).
//!
//! The paper treats granularity as the dimension *orthogonal* to
//! arbitration: "regardless of the granularity … serialization is
//! inevitable" and "combining those approaches will have a synergistic
//! effect". These modes let the ablation benches cross the two.

/// How finely the runtime's critical section is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// One global critical section per process covering the whole MPI
    /// call (Fig 1 "Global") — what MPICH and the paper use.
    #[default]
    Global,
    /// The same single lock, but each call takes it in several short
    /// sections, with object reference counts updated by lock-free
    /// atomics in between (Fig 1 "Brief Global").
    BriefGlobal,
    /// Separate locks for the matching queues and for the progress
    /// engine, plus atomic reference counts (towards Fig 1 "Fine-Grain").
    PerQueue,
}

impl Granularity {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Global => "global",
            Granularity::BriefGlobal => "brief-global",
            Granularity::PerQueue => "per-queue",
        }
    }

    /// Whether request allocation happens outside the critical section
    /// (charged as atomic refcount traffic instead).
    pub fn alloc_outside_cs(self) -> bool {
        !matches!(self, Granularity::Global)
    }

    /// Whether the progress engine uses a lock distinct from the queue
    /// lock.
    pub fn split_progress_lock(self) -> bool {
        matches!(self, Granularity::PerQueue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_predicates() {
        assert_eq!(Granularity::Global.label(), "global");
        assert!(!Granularity::Global.alloc_outside_cs());
        assert!(Granularity::BriefGlobal.alloc_outside_cs());
        assert!(!Granularity::BriefGlobal.split_progress_lock());
        assert!(Granularity::PerQueue.split_progress_lock());
    }
}
