//! One-sided operations and the asynchronous progress thread (the Fig 9
//! experiment's machinery).
//!
//! Put/get/accumulate are implemented the way ARMCI-MPI-over-MPICH
//! behaves with asynchronous progress: the origin injects an RMA packet;
//! the **target's progress engine** applies it to the window and acks.
//! Nothing completes unless someone on the target is inside the progress
//! loop — which is exactly why the paper enables MPICH's asynchronous
//! progress thread there, turning a single-threaded benchmark into an
//! `MPI_THREAD_MULTIPLE` workload where the progress thread (almost
//! always in the progress loop, almost never doing useful work)
//! monopolizes a biased lock.

use crate::packet::{Packet, PacketKind, RmaOp};
use crate::progress::progress_once;
use crate::types::MsgData;
use crate::world::RankHandle;
use mtmpi_locks::PathClass;
use mtmpi_obs::CsOp;
use std::sync::atomic::{AtomicBool, Ordering};

impl RankHandle {
    /// Issue an RMA packet and return its token.
    fn rma_issue(&self, target: u32, op: RmaOp, offset: u64, data: MsgData) -> u64 {
        let w = &self.world;
        assert!(target < w.nranks(), "target rank out of range");
        let costs = w.costs;
        let wire_bytes = match op {
            RmaOp::Get { .. } => costs.header_bytes, // request carries no payload
            _ => data.len() + costs.header_bytes,
        };
        let rank = self.rank;
        w.cs(rank, PathClass::Main, CsOp::Rma, |st| {
            w.platform.compute(costs.alloc_ns + costs.enqueue_ns);
            let token = st.rma_next_token;
            st.rma_next_token += 1;
            let seq = st.send_seq[target as usize];
            st.send_seq[target as usize] += 1;
            let p = &w.procs[rank as usize];
            let dst_ep = w.procs[target as usize].endpoint;
            w.platform.net_send(
                p.endpoint,
                dst_ep,
                wire_bytes,
                Box::new(Packet {
                    src: rank,
                    seq,
                    kind: PacketKind::Rma {
                        op,
                        offset,
                        data,
                        token,
                    },
                }),
            );
            token
        })
    }

    /// Block until the ack for `token` arrives; returns its payload.
    fn rma_wait(&self, token: u64) -> Option<MsgData> {
        let w = &self.world;
        let rank = self.rank;
        let costs = w.costs;
        let mut class = PathClass::Main;
        let start = w.platform.now_ns();
        loop {
            let got = w.cs(rank, class, CsOp::Rma, |st| {
                if let Some(d) = st.rma_acks.remove(&token) {
                    w.platform.compute(costs.free_ns);
                    return Some(d);
                }
                if !w.granularity.split_progress_lock() {
                    let pkts = crate::progress::poll(w, rank, class);
                    crate::progress::deliver(w, rank, st, pkts);
                    if let Some(d) = st.rma_acks.remove(&token) {
                        w.platform.compute(costs.free_ns);
                        return Some(d);
                    }
                }
                None
            });
            if let Some(d) = got {
                return d;
            }
            if w.granularity.split_progress_lock() {
                progress_once(w, rank, class);
            }
            class = PathClass::Progress;
            w.platform.compute(costs.poll_gap_ns);
            self.check_liveness(start, "rma_wait");
        }
    }

    /// One-sided put: write `data` into `target`'s window at `offset`.
    /// Blocks until remotely complete (acked), like `ARMCI_Put` of
    /// contiguous data.
    pub fn put(&self, target: u32, offset: u64, data: MsgData) {
        let token = self.rma_issue(target, RmaOp::Put, offset, data);
        let _ = self.rma_wait(token);
    }

    /// One-sided get of `len` bytes from `target`'s window at `offset`.
    pub fn get(&self, target: u32, offset: u64, len: u64) -> Vec<u8> {
        let token = self.rma_issue(
            target,
            RmaOp::Get { real: true },
            offset,
            MsgData::Synthetic(len),
        );
        match self.rma_wait(token) {
            Some(MsgData::Bytes(b)) => b,
            other => panic!("get expected bytes, got {other:?}"),
        }
    }

    /// Timing-only get (synthetic payload; no host memory churn) for
    /// benchmarks.
    pub fn get_synthetic(&self, target: u32, offset: u64, len: u64) {
        let token = self.rma_issue(
            target,
            RmaOp::Get { real: false },
            offset,
            MsgData::Synthetic(len),
        );
        let _ = self.rma_wait(token);
    }

    /// One-sided accumulate: element-wise `f64` add of `data` into the
    /// target window.
    pub fn accumulate(&self, target: u32, offset: u64, data: MsgData) {
        let token = self.rma_issue(target, RmaOp::Accumulate, offset, data);
        let _ = self.rma_wait(token);
    }

    /// The asynchronous progress loop: poll until `stop` is set. Spawn
    /// this on its own thread to emulate `MPICH_ASYNC_PROGRESS=1`. The
    /// first iteration enters on the main path; all subsequent ones are
    /// low-priority progress entries (the thread "does not do useful work
    /// most of the time", §6.1.2).
    pub fn progress_loop(&self, stop: &AtomicBool) {
        let w = &self.world;
        let mut class = PathClass::Main;
        while !stop.load(Ordering::Acquire) {
            progress_once(w, self.rank, class);
            class = PathClass::Progress;
            w.platform.compute(w.costs.poll_gap_ns);
        }
    }
}
