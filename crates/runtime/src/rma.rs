//! One-sided operations and the asynchronous progress thread (the Fig 9
//! experiment's machinery).
//!
//! Put/get/accumulate are implemented the way ARMCI-MPI-over-MPICH
//! behaves with asynchronous progress: the origin injects an RMA packet;
//! the **target's progress engine** applies it to the window and acks.
//! Nothing completes unless someone on the target is inside the progress
//! loop — which is exactly why the paper enables MPICH's asynchronous
//! progress thread there, turning a single-threaded benchmark into an
//! `MPI_THREAD_MULTIPLE` workload where the progress thread (almost
//! always in the progress loop, almost never doing useful work)
//! monopolizes a biased lock.

use crate::errors::MpiError;
use crate::p2p::wait_path;
use crate::packet::{PacketKind, RmaOp};
use crate::progress::progress_once;
use crate::types::MsgData;
use crate::world::{obs_path, RankHandle};
use mtmpi_locks::PathClass;
use mtmpi_obs::CsOp;
use std::sync::atomic::{AtomicBool, Ordering};

impl RankHandle {
    /// Issue an RMA packet and return its token.
    fn rma_issue(&self, target: u32, op: RmaOp, offset: u64, data: MsgData) -> u64 {
        let w = &self.world;
        assert!(target < w.nranks(), "target rank out of range");
        let costs = w.costs;
        let wire_bytes = match op {
            RmaOp::Get { .. } => costs.header_bytes, // request carries no payload
            _ => data.len() + costs.header_bytes,
        };
        let rank = self.rank;
        // RMA state (window memory, token space, acks) is pinned to
        // VCI 0; one-sided traffic never shards.
        w.cs(rank, 0, PathClass::Main, CsOp::Rma, |st| {
            w.platform.compute(costs.alloc_ns + costs.enqueue_ns);
            let token = st.rma_next_token;
            st.rma_next_token += 1;
            crate::faults::send_data(
                w,
                st,
                rank,
                0,
                target,
                wire_bytes,
                PacketKind::Rma {
                    op,
                    offset,
                    data,
                    token,
                },
            );
            token
        })
    }

    /// Block until the ack for `token` arrives; returns its payload.
    /// Fails with the usual typed errors ([`MpiError::Timeout`],
    /// [`MpiError::PeerUnreachable`]); there is nothing to cancel — RMA
    /// operations hold no ledger entries, only the token slot, which is
    /// simply abandoned.
    fn try_rma_wait(&self, token: u64) -> Result<Option<MsgData>, MpiError> {
        let w = &self.world;
        let rank = self.rank;
        let costs = w.costs;
        let mut class = PathClass::Main;
        let start = w.platform.now_ns();
        loop {
            let opath = wait_path(class);
            let got = w.cs_on(rank, 0, class, opath, CsOp::Rma, |st| {
                if let Some(d) = st.rma_acks.remove(&token) {
                    w.platform.compute(costs.free_ns);
                    return Ok(Some(d));
                }
                if !w.granularity.split_progress_lock() {
                    let pkts = crate::progress::poll(w, rank, 0, class, opath);
                    crate::progress::deliver(w, rank, 0, st, pkts);
                    if let Some(d) = st.rma_acks.remove(&token) {
                        w.platform.compute(costs.free_ns);
                        return Ok(Some(d));
                    }
                }
                match st.fault_error.clone() {
                    Some(e) => Err(e),
                    None => Ok(None),
                }
            });
            if let Some(d) = got? {
                return Ok(d);
            }
            if w.granularity.split_progress_lock() {
                let _ = progress_once(w, rank, 0, class, opath);
            }
            class = PathClass::Progress;
            w.platform.compute(costs.poll_gap_ns);
            if let Some(waited_ns) = self.liveness_exceeded(start) {
                return Err(MpiError::Timeout {
                    rank,
                    what: "rma_wait",
                    waited_ns,
                });
            }
        }
    }

    /// [`Self::try_rma_wait`], panicking on error (legacy behaviour).
    fn rma_wait(&self, token: u64) -> Option<MsgData> {
        self.try_rma_wait(token).unwrap_or_else(|e| panic!("{e}"))
    }

    /// One-sided put: write `data` into `target`'s window at `offset`.
    /// Blocks until remotely complete (acked), like `ARMCI_Put` of
    /// contiguous data.
    pub fn put(&self, target: u32, offset: u64, data: MsgData) {
        let token = self.rma_issue(target, RmaOp::Put, offset, data);
        let _ = self.rma_wait(token);
    }

    /// Fallible [`Self::put`].
    pub fn try_put(&self, target: u32, offset: u64, data: MsgData) -> Result<(), MpiError> {
        let token = self.rma_issue(target, RmaOp::Put, offset, data);
        self.try_rma_wait(token).map(|_| ())
    }

    /// One-sided get of `len` bytes from `target`'s window at `offset`.
    pub fn get(&self, target: u32, offset: u64, len: u64) -> Vec<u8> {
        match self.try_get(target, offset, len) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::get`].
    pub fn try_get(&self, target: u32, offset: u64, len: u64) -> Result<Vec<u8>, MpiError> {
        let token = self.rma_issue(
            target,
            RmaOp::Get { real: true },
            offset,
            MsgData::Synthetic(len),
        );
        match self.try_rma_wait(token)? {
            Some(MsgData::Bytes(b)) => Ok(b),
            // lint: allow(L005) protocol invariant — a real Get ack always carries bytes
            other => panic!("get expected bytes, got {other:?}"),
        }
    }

    /// Timing-only get (synthetic payload; no host memory churn) for
    /// benchmarks.
    pub fn get_synthetic(&self, target: u32, offset: u64, len: u64) {
        let token = self.rma_issue(
            target,
            RmaOp::Get { real: false },
            offset,
            MsgData::Synthetic(len),
        );
        let _ = self.rma_wait(token);
    }

    /// One-sided accumulate: element-wise `f64` add of `data` into the
    /// target window.
    pub fn accumulate(&self, target: u32, offset: u64, data: MsgData) {
        let token = self.rma_issue(target, RmaOp::Accumulate, offset, data);
        let _ = self.rma_wait(token);
    }

    /// Fallible [`Self::accumulate`].
    pub fn try_accumulate(&self, target: u32, offset: u64, data: MsgData) -> Result<(), MpiError> {
        let token = self.rma_issue(target, RmaOp::Accumulate, offset, data);
        self.try_rma_wait(token).map(|_| ())
    }

    /// The asynchronous progress loop: poll until `stop` is set. Spawn
    /// this on its own thread to emulate `MPICH_ASYNC_PROGRESS=1`. The
    /// first iteration enters on the main path; all subsequent ones are
    /// low-priority progress entries (the thread "does not do useful work
    /// most of the time", §6.1.2). Unlike blocking waits, this *is* the
    /// progress engine, so its passages stay on the progress path in the
    /// event stream.
    pub fn progress_loop(&self, stop: &AtomicBool) {
        let w = &self.world;
        let mut class = PathClass::Main;
        // Round-robin over the rank's shards (one per iteration); with a
        // single VCI this is exactly the pre-VCI loop.
        let mut rotor = mtmpi_vci::Rotor::new();
        while !stop.load(Ordering::Acquire) {
            let vci = rotor.next(w.vci_n());
            let _ = progress_once(w, self.rank, vci, class, obs_path(class));
            class = PathClass::Progress;
            w.platform.compute(w.costs.poll_gap_ns);
        }
    }
}
