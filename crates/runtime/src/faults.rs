//! Transport-level fault recovery: sequenced sends, cumulative acks, and
//! the retransmit queue.
//!
//! On fault-free runs ([`crate::WorldBuilder::fault_plan`] absent or
//! inert) every function here collapses to the pre-fault fast path — a
//! plain `net_send`, no acks, no bookkeeping — so such runs stay
//! byte-identical to a build without this module.
//!
//! With an active [`mtmpi_net::FaultPlan`], every *data* packet (Msg,
//! Rma, RmaAck) goes through [`send_data`], which:
//!
//! 1. stamps the packet with a piggybacked cumulative ack (`all seq <
//!    ack received from you`),
//! 2. stores a clone in the per-process retransmit queue,
//! 3. rolls the plan's deterministic dice for this transmission and
//!    applies the outcome (drop / duplicate / extra delay).
//!
//! The receive side ([`crate::progress::deliver`]) acknowledges progress
//! with standalone [`PacketKind::Ack`] packets, which bypass fault
//! injection entirely — they are the recovery channel, not the workload —
//! and are themselves never retransmitted: a lost ack is repaired by the
//! next ack (cumulative) or by the sender's retransmission provoking a
//! duplicate, which is re-acked.
//!
//! [`pump_retransmits`] is called from every progress-engine passage (and
//! thus from every blocking wait iteration): expired entries are re-sent
//! with exponential backoff `rto_ns << min(attempts, backoff_cap)`; a
//! packet exceeding `max_attempts` escalates to the sticky typed error
//! [`MpiError::PeerUnreachable`], surfaced by the `try_wait` family.

use crate::errors::MpiError;
use crate::packet::{Packet, PacketKind, ACK_SEQ};
use crate::state::{PendingPkt, SharedState};
use crate::world::WorldInner;
use mtmpi_obs::EventKind;

/// Send one sequenced data packet from shard `vci` of `rank` to the same
/// shard of `dst`, allocating its sequence number. Caller must hold that
/// shard's queue lock. Peer shards pair up: the VCI map is a pure
/// function of the message envelope, so sender and receiver resolve the
/// same shard index, and each (vci, src, dst) triple has its own private
/// sequence space.
pub(crate) fn send_data(
    w: &WorldInner,
    st: &mut SharedState,
    rank: u32,
    vci: u32,
    dst: u32,
    bytes: u64,
    kind: PacketKind,
) {
    let seq = st.send_seq[dst as usize];
    st.send_seq[dst as usize] += 1;
    let src_ep = w.shard(rank, vci).endpoint;
    let dst_ep = w.shard(dst, vci).endpoint;
    // Flow origin: every data packet — fast path or fault path — gets its
    // (src, dst, vci, seq) identity stamped exactly once, here, where the
    // sequence number is allocated. Retransmits and duplicates reuse the
    // seq, so the whole recovery story shares this one flow id.
    w.rec_now(|| EventKind::FlowSend {
        rank,
        dst,
        vci,
        seq,
    });
    if st.faults.is_none() {
        // Fault-free fast path: identical to the pre-fault runtime.
        w.platform.net_send(
            src_ep,
            dst_ep,
            bytes,
            Box::new(Packet {
                src: rank,
                seq,
                ack: 0,
                kind,
            }),
        );
        return;
    }
    let ack = st.recv_next_seq[dst as usize];
    let fs = st.faults.as_mut().expect("checked above");
    let count = fs.send_count[dst as usize];
    fs.send_count[dst as usize] += 1;
    let d = fs.plan.decide(src_ep, dst_ep, count);
    let pkt = Packet {
        src: rank,
        seq,
        ack,
        kind,
    };
    fs.pending.insert(
        (dst, seq),
        PendingPkt {
            pkt: pkt.clone(),
            bytes,
            next_retry_ns: w.platform.now_ns() + fs.plan.rto_ns,
            attempts: 0,
        },
    );
    if d.any() {
        w.rec_now(|| EventKind::FaultInjected {
            rank,
            dst,
            seq,
            fault: d.label(),
        });
    }
    if !d.drop {
        w.platform.net_send_delayed(
            src_ep,
            dst_ep,
            bytes,
            d.extra_delay_ns,
            Box::new(pkt.clone()),
        );
        if d.duplicate {
            w.platform
                .net_send_delayed(src_ep, dst_ep, bytes, d.extra_delay_ns, Box::new(pkt));
        }
    }
}

/// Send a standalone cumulative ack to `dst` (fault runs only). Acks are
/// the recovery channel: they skip fault injection and the retransmit
/// queue. Caller must hold `rank`'s queue lock.
pub(crate) fn send_ack(w: &WorldInner, st: &mut SharedState, rank: u32, vci: u32, dst: u32) {
    debug_assert!(st.faults.is_some(), "acks only exist on fault runs");
    let src_ep = w.shard(rank, vci).endpoint;
    let dst_ep = w.shard(dst, vci).endpoint;
    w.platform.net_send(
        src_ep,
        dst_ep,
        w.costs.header_bytes,
        Box::new(Packet {
            src: rank,
            seq: ACK_SEQ,
            ack: st.recv_next_seq[dst as usize],
            kind: PacketKind::Ack,
        }),
    );
}

/// Apply a cumulative ack from `src`: every stored transmission to `src`
/// with sequence `< ack` is delivered and leaves the retransmit queue.
pub(crate) fn process_ack(st: &mut SharedState, src: u32, ack: u64) {
    if ack == 0 {
        return;
    }
    let Some(fs) = st.faults.as_mut() else { return };
    let acked: Vec<(u32, u64)> = fs
        .pending
        .range((src, 0)..(src, ack))
        .map(|(k, _)| *k)
        .collect();
    for k in acked {
        fs.pending.remove(&k);
    }
}

/// Re-send every expired pending transmission; escalate exhausted ones to
/// a sticky [`MpiError::PeerUnreachable`]. Caller must hold `rank`'s
/// queue lock.
pub(crate) fn pump_retransmits(w: &WorldInner, st: &mut SharedState, rank: u32, vci: u32) {
    let Some(fs) = st.faults.as_mut() else { return };
    if fs.pending.is_empty() {
        return;
    }
    let now = w.platform.now_ns();
    let plan = fs.plan.clone();
    let due: Vec<(u32, u64)> = fs
        .pending
        .iter()
        .filter(|(_, p)| p.next_retry_ns <= now)
        .map(|(k, _)| *k)
        .collect();
    let mut escalated = None;
    for key in due {
        let (dst, seq) = key;
        let entry = fs.pending.get_mut(&key).expect("key from this map");
        // The backoff this entry just waited out (for the retry latency
        // segment), and the longer one it waits next.
        let waited_ns = plan.rto_ns << entry.attempts.min(plan.backoff_cap);
        entry.attempts += 1;
        let attempt = entry.attempts;
        if attempt > plan.max_attempts {
            escalated.get_or_insert(MpiError::PeerUnreachable {
                rank,
                peer: dst,
                attempts: attempt,
            });
            fs.pending.remove(&key);
            continue;
        }
        entry.next_retry_ns = now + (plan.rto_ns << attempt.min(plan.backoff_cap));
        let pkt = entry.pkt.clone();
        let bytes = entry.bytes;
        // Retransmissions roll fresh dice: a retried packet can itself be
        // dropped, duplicated, or delayed again.
        let count = fs.send_count[dst as usize];
        fs.send_count[dst as usize] += 1;
        let src_ep = w.shard(rank, vci).endpoint;
        let dst_ep = w.shard(dst, vci).endpoint;
        let d = plan.decide(src_ep, dst_ep, count);
        w.rec_now(|| EventKind::Retransmit {
            rank,
            dst,
            seq,
            attempt,
            backoff_ns: waited_ns,
        });
        if !d.drop {
            w.platform.net_send_delayed(
                src_ep,
                dst_ep,
                bytes,
                d.extra_delay_ns,
                Box::new(pkt.clone()),
            );
            if d.duplicate {
                w.platform
                    .net_send_delayed(src_ep, dst_ep, bytes, d.extra_delay_ns, Box::new(pkt));
            }
        }
    }
    if let Some(e) = escalated {
        st.fault_error.get_or_insert(e);
    }
}
