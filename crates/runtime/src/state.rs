//! Per-process runtime state, guarded by the process's critical section.

use crate::errors::MpiError;
use crate::packet::Packet;
use crate::request::ReqInner;
use crate::types::{CommId, MsgData, Tag};
use mtmpi_check::RequestLedger;
use mtmpi_metrics::{DanglingSampler, Histogram};
use mtmpi_net::FaultPlan;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// A posted (unmatched) receive.
#[derive(Debug)]
pub(crate) struct PostedRecv {
    pub req: Arc<ReqInner>,
    pub src: Option<u32>,
    pub tag: Option<Tag>,
    pub comm: CommId,
}

/// An arrived message with no matching posted receive yet.
#[derive(Debug)]
pub(crate) struct UnexMsg {
    pub src: u32,
    pub tag: Tag,
    pub comm: CommId,
    pub data: MsgData,
    /// Platform clock at the send, for the message-latency histogram.
    pub sent_ns: u64,
}

/// Heap entry for per-source in-order delivery.
#[derive(Debug)]
pub(crate) struct SeqPacket(pub Packet);

impl PartialEq for SeqPacket {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for SeqPacket {}
impl Ord for SeqPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.seq.cmp(&self.0.seq) // min-heap by seq
    }
}
impl PartialOrd for SeqPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A transmitted-but-unacked packet awaiting acknowledgement or
/// retransmission (fault-injection runs only).
#[derive(Debug)]
pub(crate) struct PendingPkt {
    /// Stored copy, re-sent on timeout. Its piggybacked `ack` may be
    /// stale by then — harmless, cumulative acks are monotone.
    pub pkt: Packet,
    /// Wire size charged per transmission.
    pub bytes: u64,
    /// Model time at which the next retransmission fires.
    pub next_retry_ns: u64,
    /// Transmissions so far beyond the first (0 = never retransmitted).
    pub attempts: u32,
}

/// Per-process fault-recovery state. Present only when the world was
/// built with an active [`FaultPlan`]; `None` keeps fault-free runs on
/// the exact pre-fault code paths (no acks, no retransmit bookkeeping).
#[derive(Debug)]
pub(crate) struct FaultState {
    /// The fault/recovery policy (shared by every rank).
    pub plan: FaultPlan,
    /// Per-destination transmission counter feeding the decision hash.
    /// Retransmissions advance it too (fresh dice per transmission).
    pub send_count: Vec<u64>,
    /// Unacked transmissions keyed by `(dst rank, seq)`; the BTreeMap
    /// order makes cumulative-ack purges a range scan.
    pub pending: BTreeMap<(u32, u64), PendingPkt>,
}

impl FaultState {
    pub(crate) fn new(nranks: u32, plan: FaultPlan) -> Self {
        Self {
            plan,
            send_count: vec![0; nranks as usize],
            pending: BTreeMap::new(),
        }
    }
}

/// Everything a process's critical section protects.
#[derive(Debug)]
pub(crate) struct SharedState {
    /// Posted-receive queue (searched FIFO on arrival).
    pub posted: VecDeque<PostedRecv>,
    /// Unexpected-message queue (searched FIFO by new receives).
    pub unexpected: VecDeque<UnexMsg>,
    /// Next sequence number for sends, per destination rank.
    pub send_seq: Vec<u64>,
    /// Next expected arrival sequence, per source rank.
    pub recv_next_seq: Vec<u64>,
    /// Out-of-order arrival buffers, per source rank.
    pub reorder: Vec<BinaryHeap<SeqPacket>>,
    /// Receive requests completed but not yet freed (the §4.4 metric).
    pub dangling_now: u64,
    /// Request life-cycle counters (Issue/Post/Complete/Free); checked
    /// for quiescence at `World` drop in debug builds.
    pub ledger: RequestLedger,
    /// Sampler fed at every critical-section acquisition.
    pub dangling: DanglingSampler,
    /// Total critical-section acquisitions by this process.
    pub cs_acquisitions: u64,
    /// Queue-lock wait times (request → grant), one sample per CS entry.
    pub cs_wait_ns: Histogram,
    /// Queue-lock hold times (grant → release), one sample per CS entry.
    pub cs_hold_ns: Histogram,
    /// Receive-side message latency (send issue → local match).
    pub msg_latency_ns: Histogram,
    /// RMA window memory (empty when no window configured).
    pub win_mem: Vec<u8>,
    /// Completed RMA acks awaiting their origin thread, by token.
    pub rma_acks: HashMap<u64, Option<MsgData>>,
    /// Next RMA token.
    pub rma_next_token: u64,
    /// High-water marks for diagnostics.
    pub max_unexpected: usize,
    pub max_posted: usize,
    /// Fault-recovery state; `None` on fault-free runs.
    pub faults: Option<FaultState>,
    /// Sticky escalated fault (first `PeerUnreachable`); blocking waits
    /// check it every iteration and surface it as a typed error.
    pub fault_error: Option<MpiError>,
}

impl SharedState {
    pub(crate) fn new(nranks: u32, win_bytes: usize, plan: Option<FaultPlan>) -> Self {
        Self {
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            send_seq: vec![0; nranks as usize],
            recv_next_seq: vec![0; nranks as usize],
            reorder: (0..nranks).map(|_| BinaryHeap::new()).collect(),
            dangling_now: 0,
            ledger: RequestLedger::new(),
            dangling: DanglingSampler::new(),
            cs_acquisitions: 0,
            cs_wait_ns: Histogram::new(),
            cs_hold_ns: Histogram::new(),
            msg_latency_ns: Histogram::new(),
            win_mem: vec![0; win_bytes],
            rma_acks: HashMap::new(),
            rma_next_token: 1,
            max_unexpected: 0,
            max_posted: 0,
            faults: plan.map(|p| FaultState::new(nranks, p)),
            fault_error: None,
        }
    }

    /// Record queue high-water marks (called after insertions).
    pub(crate) fn note_depths(&mut self) {
        self.max_unexpected = self.max_unexpected.max(self.unexpected.len());
        self.max_posted = self.max_posted.max(self.posted.len());
    }
}

/// Does a posted receive (src?, tag?, comm) match an envelope (src, tag,
/// comm)?
pub(crate) fn matches(
    want_src: Option<u32>,
    want_tag: Option<Tag>,
    want_comm: CommId,
    src: u32,
    tag: Tag,
    comm: CommId,
) -> bool {
    want_comm == comm && want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matching() {
        let w = CommId::WORLD;
        assert!(matches(None, None, w, 3, 9, w));
        assert!(matches(Some(3), None, w, 3, 9, w));
        assert!(matches(None, Some(9), w, 3, 9, w));
        assert!(!matches(Some(2), None, w, 3, 9, w));
        assert!(!matches(None, Some(8), w, 3, 9, w));
        assert!(!matches(None, None, CommId(5), 3, 9, w));
    }

    #[test]
    fn seq_packet_min_heap() {
        use crate::packet::{Packet, PacketKind};
        let mk = |seq| {
            SeqPacket(Packet {
                src: 0,
                seq,
                ack: 0,
                kind: PacketKind::Msg {
                    comm: CommId::WORLD,
                    tag: 0,
                    data: MsgData::Synthetic(0),
                    sent_ns: 0,
                },
            })
        };
        let mut h = BinaryHeap::new();
        for s in [5u64, 1, 3] {
            h.push(mk(s));
        }
        assert_eq!(h.pop().unwrap().0.seq, 1);
        assert_eq!(h.pop().unwrap().0.seq, 3);
        assert_eq!(h.pop().unwrap().0.seq, 5);
    }
}
