//! World construction and the critical-section discipline.

use crate::costs::RuntimeCosts;
use crate::granularity::Granularity;
use crate::state::SharedState;
use mtmpi_locks::{CsToken, PathClass};
use mtmpi_sim::{LockId, LockKind, Platform};
use std::cell::UnsafeCell;
use std::sync::Arc;

/// One MPI process.
pub(crate) struct Process {
    pub(crate) endpoint: usize,
    pub(crate) cs_queue: LockId,
    pub(crate) cs_progress: LockId,
    state: UnsafeCell<SharedState>,
}

// SAFETY: `state` is only accessed through `WorldInner::cs`, which holds
// the process's queue lock, or through the post-run diagnostics methods.
unsafe impl Send for Process {}
// SAFETY: same contract as Send — the queue lock serializes all shared
// access to `state`.
unsafe impl Sync for Process {}

pub(crate) struct WorldInner {
    pub(crate) platform: Arc<dyn Platform>,
    pub(crate) costs: RuntimeCosts,
    pub(crate) granularity: Granularity,
    pub(crate) procs: Vec<Process>,
    pub(crate) liveness_limit_ns: u64,
    /// Whether the CS lock consumes selective wake-up hints.
    pub(crate) selective: bool,
}

impl WorldInner {
    /// Run `f` with the process state under the queue lock, charging the
    /// acquisition and feeding the dangling sampler (the §4.4 sampling
    /// interval is "successive lock acquisitions").
    pub(crate) fn cs<R>(
        &self,
        rank: u32,
        class: PathClass,
        f: impl FnOnce(&mut SharedState) -> R,
    ) -> R {
        let p = &self.procs[rank as usize];
        let token = self.platform.lock_acquire(p.cs_queue, class);
        // SAFETY: we hold the queue lock for this process.
        let st = unsafe { &mut *p.state.get() };
        st.cs_acquisitions += 1;
        let d = st.dangling_now;
        st.dangling.sample(d);
        let r = f(st);
        self.platform.lock_release(p.cs_queue, class, token);
        r
    }

    /// Acquire the progress lock (PerQueue mode only; otherwise this is
    /// the queue lock). Does NOT grant state access.
    pub(crate) fn progress_lock(&self, rank: u32, class: PathClass) -> (LockId, CsToken) {
        let p = &self.procs[rank as usize];
        let id = if self.granularity.split_progress_lock() {
            p.cs_progress
        } else {
            p.cs_queue
        };
        (id, self.platform.lock_acquire(id, class))
    }

    pub(crate) fn nranks(&self) -> u32 {
        self.procs.len() as u32
    }

    /// Post-run read of a process's state. Only sound once all workers
    /// have finished (after `platform.run()` returns).
    pub(crate) unsafe fn state_post_run(&self, rank: u32) -> &SharedState {
        // SAFETY: caller guarantees all workers have quiesced, so no
        // thread can be inside `cs` mutating the state concurrently.
        unsafe { &*self.procs[rank as usize].state.get() }
    }
}

impl Drop for WorldInner {
    /// Debug-build leak check: when the last `World`/`RankHandle` clone
    /// goes away, every issued request must have completed its
    /// Issue→(Post)→Complete→Free life cycle (paper Fig 3b). A dropped
    /// `Request` handle or a lost completion panics here with the
    /// per-rank [`mtmpi_check::LeakReport`].
    fn drop(&mut self) {
        if !cfg!(debug_assertions) || std::thread::panicking() {
            return;
        }
        for (rank, p) in self.procs.iter_mut().enumerate() {
            let st = p.state.get_mut();
            if let Err(report) = st.ledger.check_quiescent() {
                panic!("rank {rank} leaked requests at World drop: {report}");
            }
        }
    }
}

/// The set of MPI processes sharing a platform. Cheap to clone.
#[derive(Clone)]
pub struct World {
    pub(crate) inner: Arc<WorldInner>,
}

/// Builder for [`World`].
pub struct WorldBuilder {
    platform: Arc<dyn Platform>,
    ranks: u32,
    node_of: Box<dyn Fn(u32) -> u32>,
    lock: LockKind,
    granularity: Granularity,
    costs: RuntimeCosts,
    window_bytes: usize,
    liveness_limit_ns: u64,
}

impl World {
    /// Start building a world on `platform`.
    pub fn builder(platform: Arc<dyn Platform>) -> WorldBuilder {
        WorldBuilder {
            platform,
            ranks: 1,
            node_of: Box::new(|_| 0),
            lock: LockKind::Mutex,
            granularity: Granularity::Global,
            costs: RuntimeCosts::default(),
            window_bytes: 0,
            liveness_limit_ns: 120_000_000_000, // 120 virtual seconds
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.inner.nranks()
    }

    /// Handle for issuing MPI calls as `rank`. Clone it into each of the
    /// rank's threads.
    pub fn rank(&self, rank: u32) -> RankHandle {
        assert!(rank < self.nranks(), "rank out of range");
        RankHandle {
            world: self.inner.clone(),
            rank,
        }
    }

    /// The queue-lock id of a rank (to pair with
    /// [`mtmpi_sim::PlatformReport::lock_traces`]).
    pub fn lock_of(&self, rank: u32) -> LockId {
        self.inner.procs[rank as usize].cs_queue
    }

    /// Dangling-request sampler of a rank. **Post-run only** (after
    /// `platform.run()` has returned).
    pub fn dangling_report(&self, rank: u32) -> mtmpi_metrics::DanglingSampler {
        // SAFETY: documented post-run contract.
        unsafe { self.inner.state_post_run(rank).dangling.clone() }
    }

    /// Critical-section acquisition count of a rank. Post-run only.
    pub fn cs_acquisitions(&self, rank: u32) -> u64 {
        // SAFETY: documented post-run contract.
        unsafe { self.inner.state_post_run(rank).cs_acquisitions }
    }

    /// Request life-cycle ledger of a rank (see
    /// [`mtmpi_check::RequestLedger`]). Post-run only.
    pub fn request_ledger(&self, rank: u32) -> mtmpi_check::RequestLedger {
        // SAFETY: documented post-run contract.
        unsafe { self.inner.state_post_run(rank).ledger }
    }

    /// Unexpected-queue high-water mark. Post-run only.
    pub fn max_unexpected(&self, rank: u32) -> usize {
        // SAFETY: documented post-run contract.
        unsafe { self.inner.state_post_run(rank).max_unexpected }
    }

    /// Contents of the rank's RMA window. Post-run only.
    pub fn window_snapshot(&self, rank: u32) -> Vec<u8> {
        // SAFETY: documented post-run contract.
        unsafe { self.inner.state_post_run(rank).win_mem.clone() }
    }
}

impl WorldBuilder {
    /// Number of MPI ranks (default 1).
    pub fn ranks(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one rank");
        self.ranks = n;
        self
    }

    /// Map each rank to a cluster node (default: all on node 0).
    pub fn rank_on_node(mut self, f: impl Fn(u32) -> u32 + 'static) -> Self {
        self.node_of = Box::new(f);
        self
    }

    /// Critical-section arbitration method (default mutex — the paper's
    /// baseline).
    pub fn lock(mut self, kind: LockKind) -> Self {
        self.lock = kind;
        self
    }

    /// Critical-section granularity (default global).
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Override the runtime cost model.
    pub fn costs(mut self, c: RuntimeCosts) -> Self {
        self.costs = c;
        self
    }

    /// Give every rank an RMA window of `bytes` bytes.
    pub fn window_bytes(mut self, bytes: usize) -> Self {
        self.window_bytes = bytes;
        self
    }

    /// Abort blocking waits after this much virtual/model time (a
    /// liveness guard that turns communication bugs into loud failures).
    pub fn liveness_limit_ns(mut self, ns: u64) -> Self {
        self.liveness_limit_ns = ns;
        self
    }

    /// Construct the world: registers one endpoint and one (or two, for
    /// [`Granularity::PerQueue`]) locks per rank on the platform.
    pub fn build(self) -> World {
        let mut procs = Vec::with_capacity(self.ranks as usize);
        for r in 0..self.ranks {
            let node = (self.node_of)(r);
            let endpoint = self.platform.register_endpoint(node);
            let cs_queue = self.platform.lock_create(self.lock);
            let cs_progress = if self.granularity.split_progress_lock() {
                self.platform.lock_create(self.lock)
            } else {
                cs_queue
            };
            let _ = node;
            procs.push(Process {
                endpoint,
                cs_queue,
                cs_progress,
                state: UnsafeCell::new(SharedState::new(self.ranks, self.window_bytes)),
            });
        }
        World {
            inner: Arc::new(WorldInner {
                platform: self.platform,
                costs: self.costs,
                granularity: self.granularity,
                procs,
                liveness_limit_ns: self.liveness_limit_ns,
                selective: matches!(self.lock, LockKind::Selective),
            }),
        }
    }
}

/// Per-thread handle for issuing MPI calls as one rank.
#[derive(Clone)]
pub struct RankHandle {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: u32,
}

impl RankHandle {
    /// This handle's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total ranks in the world.
    pub fn nranks(&self) -> u32 {
        self.world.nranks()
    }

    /// The platform (for `compute`, `now_ns`, …).
    pub fn platform(&self) -> &Arc<dyn Platform> {
        &self.world.platform
    }
}
