//! World construction and the critical-section discipline.
//!
//! Since the VCI work, a process is a pool of *shards* (virtual
//! communication interfaces): each shard owns its own endpoint, its own
//! critical-section lock(s), and its own [`SharedState`] (match queues,
//! sequence/ack space, retransmit queue, histograms). With one VCI —
//! the default — the layout, platform-call order, and code paths are
//! exactly the pre-VCI runtime's, so unsharded runs stay byte-identical.

use crate::costs::RuntimeCosts;
use crate::errors::{BuildError, StreamBindError};
use crate::granularity::Granularity;
use crate::state::SharedState;
use crate::stats::RankStats;
use mtmpi_check::SharedLedger;
use mtmpi_locks::{CsToken, PathClass};
use mtmpi_net::FaultPlan;
use mtmpi_obs::{CsOp, Event, EventKind, Recorder, RingRecorder, DEFAULT_SHARD_CAP, MAX_SHARDS};
use mtmpi_sim::{LockId, LockKind, Platform};
use mtmpi_vci::{VciMap, VciPool};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One virtual communication interface of one MPI process: an
/// independent slice of the runtime with its own critical section.
pub(crate) struct Shard {
    pub(crate) endpoint: usize,
    pub(crate) cs_queue: LockId,
    pub(crate) cs_progress: LockId,
    /// Platform clock at this shard's last mailbox poll — the
    /// work-stealing starvation signal. Monitoring only (plain
    /// store/load, never a synchronization hand-off).
    pub(crate) last_poll_ns: AtomicU64,
    /// Stream claim word: 0 = unbound, otherwise `tid + 1` of the one
    /// thread owning this stream shard. Bind is a CAS(0 → tid+1,
    /// AcqRel); unbind quiesces, then stores 0 with Release so the next
    /// binder's Acquire sees every plain write made while bound. Always
    /// 0 on regular (non-stream) shards.
    pub(crate) stream_owner: AtomicU64,
    state: UnsafeCell<SharedState>,
}

/// One MPI process: its shards plus the cross-shard accounting that no
/// single shard lock could guard.
pub(crate) struct Process {
    pub(crate) shards: VciPool<Shard>,
    /// Life-cycle ledger for *multi-shard* wildcard receives (requests
    /// fanned out to every shard). Their transitions happen under
    /// varying shard locks — or none — so the counters are atomic.
    pub(crate) wild: SharedLedger,
}

// SAFETY: each shard's `state` is only accessed through
// `WorldInner::cs_on` (which holds that shard's queue lock), through
// `WorldInner::stream_pass` (whose caller is the single thread holding
// the shard's stream claim word, with Release/Acquire publication at
// each bind/unbind hand-off), or through the post-run diagnostics
// methods. `wild`, `last_poll_ns`, and `stream_owner` are atomic.
unsafe impl Send for Process {}
// SAFETY: same contract as Send — the per-shard queue lock (or, for a
// stream shard, the claim word) serializes all shared access to that
// shard's `state`.
unsafe impl Sync for Process {}

/// Map a lock path class onto the obs event model's path enum (the two
/// crates cannot share the type without a dependency cycle).
pub(crate) fn obs_path(class: PathClass) -> mtmpi_obs::Path {
    match class {
        PathClass::Main => mtmpi_obs::Path::Main,
        PathClass::Progress => mtmpi_obs::Path::Progress,
    }
}

pub(crate) struct WorldInner {
    pub(crate) platform: Arc<dyn Platform>,
    pub(crate) costs: RuntimeCosts,
    pub(crate) granularity: Granularity,
    pub(crate) procs: Vec<Process>,
    pub(crate) liveness_limit_ns: u64,
    /// Whether the CS lock consumes selective wake-up hints.
    pub(crate) selective: bool,
    /// Arbitration of the CS locks (stamped into CS span events).
    pub(crate) lock: LockKind,
    /// Envelope → VCI routing (count 1 = the unsharded global CS).
    /// Routes only across the sharded VCIs — stream shards sit past the
    /// map's range and are reached solely through a bound
    /// [`crate::Stream`].
    pub(crate) vci_map: VciMap,
    /// Stream shards appended after the sharded VCIs (0 = none; the
    /// pre-stream layout, byte-identical to PR-5 builds).
    pub(crate) streams: u32,
    /// Structured-event sink; `None` costs one branch per record site.
    pub(crate) recorder: Option<Arc<dyn Recorder>>,
    /// Online collector over the recorder (mtmpi-live); `None` unless
    /// the harness installed one. The runtime itself never pumps it —
    /// it only exposes snapshots through [`World::live_stats`].
    pub(crate) live: Option<Arc<mtmpi_live::LiveCollector>>,
    /// Whether an active fault plan was installed (mirrors
    /// `SharedState::faults`, readable without the CS).
    pub(crate) faults_enabled: bool,
    /// Set when the platform run failed (fuel exhaustion, deadlock).
    /// An aborted run has in-flight requests *by definition* — they are
    /// the content of the error snapshot, not leaks — so the drop-time
    /// quiescence check stands down. See [`World::mark_aborted`].
    pub(crate) aborted: AtomicBool,
}

impl WorldInner {
    /// Whether events are being kept (callers should skip any expensive
    /// event preparation when this is false).
    #[inline]
    pub(crate) fn rec_enabled(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.enabled())
    }

    /// Record an event stamped with `t_ns`. The kind closure runs only
    /// when an enabled recorder is installed.
    #[inline]
    pub(crate) fn rec_at(&self, t_ns: u64, kind: impl FnOnce() -> EventKind) {
        if let Some(r) = &self.recorder {
            if r.enabled() {
                let (core, socket) =
                    mtmpi_locks::current_core().map_or((0, 0), |(c, s)| (c.0, s.0));
                r.record(Event {
                    t_ns,
                    tid: self.platform.current_tid(),
                    core,
                    socket,
                    kind: kind(),
                });
            }
        }
    }

    /// Record an event stamped with the current platform clock.
    #[inline]
    pub(crate) fn rec_now(&self, kind: impl FnOnce() -> EventKind) {
        if self.rec_enabled() {
            self.rec_at(self.platform.now_ns(), kind);
        }
    }

    /// Number of *sharded* VCIs per rank (excludes stream shards, so
    /// every `0..vci_n()` sweep — wildcard fan-out, work stealing,
    /// multi-shard free — never touches another thread's stream).
    #[inline]
    pub(crate) fn vci_n(&self) -> u32 {
        self.vci_map.count()
    }

    /// Total shards per rank: sharded VCIs plus stream shards. The
    /// post-run sweeps (stats, leak checks) cover this full range.
    #[inline]
    pub(crate) fn shard_total(&self) -> u32 {
        self.vci_map.count() + self.streams
    }

    /// Pool index of stream `sid` of a rank (stream shards sit after
    /// the sharded VCIs).
    #[inline]
    pub(crate) fn stream_shard(&self, sid: u32) -> u32 {
        self.vci_n() + sid
    }

    /// One shard of one rank.
    #[inline]
    pub(crate) fn shard(&self, rank: u32, vci: u32) -> &Shard {
        &self.procs[rank as usize].shards[vci]
    }

    /// Route a fully known envelope (send side, or a selective receive)
    /// to its VCI.
    #[inline]
    pub(crate) fn vci_for(&self, comm: crate::types::CommId, src: u32, dst: u32, tag: i32) -> u32 {
        self.vci_map.select_for(comm.0, src, dst, tag)
    }

    /// Run `f` with the shard state under that shard's queue lock,
    /// charging the acquisition and feeding the dangling sampler (the
    /// §4.4 sampling interval is "successive lock acquisitions"). Wait
    /// and hold times go to the always-on per-shard histograms; reading
    /// the clock never advances virtual time, so this does not perturb
    /// results. `op` names the runtime operation this passage serves —
    /// it is stamped into the CS span event so the prof layer can
    /// attribute blocked time to what the holder was doing. The
    /// observability path is derived from `class`; blocking waits
    /// spinning on the progress class use [`Self::cs_on`] to report
    /// [`mtmpi_obs::Path::WaitSpin`] instead.
    pub(crate) fn cs<R>(
        &self,
        rank: u32,
        vci: u32,
        class: PathClass,
        op: CsOp,
        f: impl FnOnce(&mut SharedState) -> R,
    ) -> R {
        self.cs_on(rank, vci, class, obs_path(class), op, f)
    }

    /// [`Self::cs`] with an explicit observability path. Lock arbitration
    /// still follows `class` (a wait-spinner *is* a low-priority entrant,
    /// paper Fig 6a); only the event/histogram attribution differs.
    pub(crate) fn cs_on<R>(
        &self,
        rank: u32,
        vci: u32,
        class: PathClass,
        opath: mtmpi_obs::Path,
        op: CsOp,
        f: impl FnOnce(&mut SharedState) -> R,
    ) -> R {
        let p = self.shard(rank, vci);
        let t_req = self.platform.now_ns();
        let token = self.platform.lock_acquire(p.cs_queue, class);
        let t_acq = self.platform.now_ns();
        // SAFETY: we hold the queue lock for this shard.
        let st = unsafe { &mut *p.state.get() };
        st.cs_acquisitions += 1;
        st.cs_wait_ns.record(t_acq.saturating_sub(t_req));
        let d = st.dangling_now;
        st.dangling.sample(d);
        let r = f(st);
        let t_rel = self.platform.now_ns();
        st.cs_hold_ns.record(t_rel.saturating_sub(t_acq));
        self.platform.lock_release(p.cs_queue, class, token);
        self.rec_at(t_rel, || EventKind::CsSpan {
            lock: p.cs_queue.0 as u32,
            kind: self.lock.label(),
            path: opath,
            op,
            vci,
            t_req,
            t_acq,
        });
        r
    }

    /// Owner-mode passage through a stream-bound shard: the CS-equivalent
    /// of [`Self::cs_on`] with **no lock at all** — the caller *is* the
    /// thread whose id sits in the shard's claim word, so the state is
    /// private by construction. Wait time is recorded as 0 (there is
    /// nothing to wait on) and the span is attributed to
    /// [`mtmpi_obs::Path::Stream`] so lock-path metrics never mix
    /// lock-free passages in.
    ///
    /// # Safety
    ///
    /// The caller must be the bound owner of stream shard `shard_idx`
    /// (its claim word holds the caller's `tid + 1`). The live
    /// [`crate::Stream`] handle is the capability that proves this.
    pub(crate) unsafe fn stream_pass<R>(
        &self,
        rank: u32,
        shard_idx: u32,
        op: CsOp,
        f: impl FnOnce(&mut SharedState) -> R,
    ) -> R {
        let p = self.shard(rank, shard_idx);
        let t_acq = self.platform.now_ns();
        // SAFETY: caller contract — this thread owns the claim word, so
        // no other thread can be inside this shard's state.
        let st = unsafe { &mut *p.state.get() };
        st.cs_acquisitions += 1;
        st.cs_wait_ns.record(0);
        let d = st.dangling_now;
        st.dangling.sample(d);
        let r = f(st);
        let t_rel = self.platform.now_ns();
        st.cs_hold_ns.record(t_rel.saturating_sub(t_acq));
        self.rec_at(t_rel, || EventKind::CsSpan {
            lock: p.cs_queue.0 as u32,
            kind: "stream",
            path: mtmpi_obs::Path::Stream,
            op,
            vci: shard_idx,
            t_req: t_acq,
            t_acq,
        });
        r
    }

    /// Claim stream `sid` of `rank` for the calling thread. The CAS
    /// acquires (pairing with the Release store of the previous owner's
    /// unbind) so every plain write the old owner made inside the shard
    /// is visible before the new owner's first [`Self::stream_pass`].
    pub(crate) fn try_bind_stream(&self, rank: u32, sid: u32) -> Result<(), StreamBindError> {
        if sid >= self.streams {
            return Err(StreamBindError::OutOfRange {
                rank,
                sid,
                streams: self.streams,
            });
        }
        let sh = self.shard(rank, self.stream_shard(sid));
        let me = self.platform.current_tid() + 1;
        match sh
            .stream_owner
            .compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(()),
            Err(_) => Err(StreamBindError::AlreadyBound { rank, sid }),
        }
    }

    /// Publish the bound thread's plain-state writes and drop the claim.
    /// Callers must have quiesced the stream first (drained its mailbox,
    /// freed or cancelled its requests) — the Release store is the
    /// publication edge the next binder's Acquire CAS synchronizes with.
    pub(crate) fn release_stream(&self, rank: u32, sid: u32) {
        self.shard(rank, self.stream_shard(sid))
            .stream_owner
            .store(0, Ordering::Release);
    }

    /// Acquire a shard's progress lock (PerQueue mode only; otherwise
    /// this is the shard's queue lock). Does NOT grant state access.
    pub(crate) fn progress_lock(&self, rank: u32, vci: u32, class: PathClass) -> (LockId, CsToken) {
        let p = self.shard(rank, vci);
        let id = if self.granularity.split_progress_lock() {
            p.cs_progress
        } else {
            p.cs_queue
        };
        (id, self.platform.lock_acquire(id, class))
    }

    pub(crate) fn nranks(&self) -> u32 {
        self.procs.len() as u32
    }

    /// Post-run read of one shard's state. Only sound once all workers
    /// have finished (after `platform.run()` returns).
    pub(crate) unsafe fn state_post_run(&self, rank: u32, vci: u32) -> &SharedState {
        // SAFETY: caller guarantees all workers have quiesced, so no
        // thread can be inside `cs` mutating the state concurrently.
        unsafe { &*self.shard(rank, vci).state.get() }
    }
}

impl Drop for WorldInner {
    /// Debug-build leak check: when the last `World`/`RankHandle` clone
    /// goes away, every issued request must have completed its
    /// Issue→(Post)→Complete→Free life cycle (paper Fig 3b). A dropped
    /// `Request` handle or a lost completion panics here with the
    /// per-rank [`mtmpi_check::LeakReport`]. Quiescence is checked *per
    /// VCI* — each shard's ledger must balance on its own — plus the
    /// process-level wildcard ledger for multi-shard receives.
    fn drop(&mut self) {
        if !cfg!(debug_assertions)
            || std::thread::panicking()
            || self.aborted.load(Ordering::Acquire)
        {
            return;
        }
        for (rank, p) in self.procs.iter_mut().enumerate() {
            for (vci, sh) in p.shards.iter().enumerate() {
                // SAFETY: `&mut self` proves no other thread can be
                // inside a CS, so the plain read is sound.
                let st = unsafe { &*sh.state.get() };
                if let Err(report) = st.ledger.check_quiescent() {
                    panic!("rank {rank} vci {vci} leaked requests at World drop: {report}");
                }
            }
            if let Err(report) = p.wild.snapshot().check_quiescent() {
                panic!("rank {rank} leaked wildcard (multi-VCI) requests at World drop: {report}");
            }
        }
    }
}

/// The set of MPI processes sharing a platform. Cheap to clone.
#[derive(Clone)]
pub struct World {
    pub(crate) inner: Arc<WorldInner>,
}

/// Builder for [`World`].
pub struct WorldBuilder {
    platform: Arc<dyn Platform>,
    ranks: u32,
    node_of: Box<dyn Fn(u32) -> u32>,
    lock: LockKind,
    granularity: Granularity,
    costs: RuntimeCosts,
    window_bytes: usize,
    liveness_limit_ns: u64,
    expect_rma: bool,
    recorder: Option<Arc<dyn Recorder>>,
    recorder_shards: Option<usize>,
    live: Option<Arc<mtmpi_live::LiveCollector>>,
    fault_plan: Option<FaultPlan>,
    vci_count: u32,
    vci_map: Option<VciMap>,
    streams: u32,
    fuel: Option<u64>,
}

impl World {
    /// Mark the run as aborted (fuel exhaustion, deadlock): threads were
    /// stopped mid-operation, so the drop-time request-leak check would
    /// fire on state that is *diagnosis*, not leakage. Callers returning
    /// a typed [`mtmpi_sim::SimError`] must flip this before the last
    /// `World` clone drops.
    pub fn mark_aborted(&self) {
        self.inner.aborted.store(true, Ordering::Release);
    }

    /// The installed structured-event recorder, if any — explicit
    /// ([`WorldBuilder::recorder`]) or the right-sized one
    /// [`WorldBuilder::recorder_shards`] auto-installed.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.inner.recorder.as_ref()
    }

    /// Start building a world on `platform`.
    pub fn builder(platform: Arc<dyn Platform>) -> WorldBuilder {
        WorldBuilder {
            platform,
            ranks: 1,
            node_of: Box::new(|_| 0),
            lock: LockKind::Mutex,
            granularity: Granularity::Global,
            costs: RuntimeCosts::default(),
            window_bytes: 0,
            liveness_limit_ns: 120_000_000_000, // 120 virtual seconds
            expect_rma: false,
            recorder: None,
            recorder_shards: None,
            live: None,
            fault_plan: None,
            vci_count: 1,
            vci_map: None,
            streams: 0,
            fuel: None,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.inner.nranks()
    }

    /// Number of sharded virtual communication interfaces per rank
    /// (excludes stream shards — see [`Self::streams`]).
    pub fn vci_count(&self) -> u32 {
        self.inner.vci_n()
    }

    /// Number of stream shards per rank (0 unless the world was built
    /// with [`WorldBuilder::streams`]).
    pub fn streams(&self) -> u32 {
        self.inner.streams
    }

    /// Handle for issuing MPI calls as `rank`. Clone it into each of the
    /// rank's threads.
    pub fn rank(&self, rank: u32) -> RankHandle {
        assert!(rank < self.nranks(), "rank out of range");
        RankHandle {
            world: self.inner.clone(),
            rank,
        }
    }

    /// The queue-lock id of a rank's VCI 0 (to pair with
    /// [`mtmpi_sim::PlatformReport::lock_traces`]). See
    /// [`Self::lock_of_vci`] for the other shards.
    pub fn lock_of(&self, rank: u32) -> LockId {
        self.lock_of_vci(rank, 0)
    }

    /// The queue-lock id of one shard of a rank.
    pub fn lock_of_vci(&self, rank: u32, vci: u32) -> LockId {
        self.inner.shard(rank, vci).cs_queue
    }

    /// Unified introspection snapshot of a rank: every profiling metric
    /// the runtime keeps, merged across its VCIs *and* stream shards
    /// (plus the wildcard ledger), in one struct. **Post-run only**
    /// (after `platform.run()` has returned).
    pub fn stats(&self, rank: u32) -> RankStats {
        let mut out = self.vci_stats(rank, 0);
        for vci in 1..self.inner.shard_total() {
            let s = self.vci_stats(rank, vci);
            out.cs_acquisitions += s.cs_acquisitions;
            out.cs_wait_ns.merge(&s.cs_wait_ns);
            out.cs_hold_ns.merge(&s.cs_hold_ns);
            out.msg_latency_ns.merge(&s.msg_latency_ns);
            out.dangling.merge(&s.dangling);
            out.ledger.merge(&s.ledger);
            out.max_unexpected = out.max_unexpected.max(s.max_unexpected);
            out.max_posted = out.max_posted.max(s.max_posted);
        }
        out.ledger
            .merge(&self.inner.procs[rank as usize].wild.snapshot());
        out
    }

    /// Introspection snapshot of one shard of a rank (the per-VCI view
    /// of [`Self::stats`]; excludes the process-level wildcard ledger).
    /// **Post-run only.**
    pub fn vci_stats(&self, rank: u32, vci: u32) -> RankStats {
        // SAFETY: documented post-run contract.
        let st = unsafe { self.inner.state_post_run(rank, vci) };
        RankStats {
            lock: self.inner.lock,
            cs_acquisitions: st.cs_acquisitions,
            cs_wait_ns: st.cs_wait_ns.clone(),
            cs_hold_ns: st.cs_hold_ns.clone(),
            msg_latency_ns: st.msg_latency_ns.clone(),
            dangling: st.dangling.clone(),
            ledger: st.ledger,
            max_unexpected: st.max_unexpected,
            max_posted: st.max_posted,
            window: st.win_mem.clone(),
        }
    }

    /// Point-in-time online profiling snapshot (per-window wait
    /// quantiles, streaming blame shares, Gini indices, starvation
    /// ratio), or `None` when no collector was installed via
    /// [`WorldBuilder::live`]. Unlike [`Self::stats`], this is safe
    /// *during* the run: it reads only what the collector has finalized
    /// below its watermark.
    pub fn live_stats(&self) -> Option<mtmpi_live::LiveStats> {
        self.inner.live.as_ref().map(|c| c.snapshot())
    }

    /// The installed online collector, if any (the harness's pump thread
    /// drives it through this handle).
    pub fn live_collector(&self) -> Option<&Arc<mtmpi_live::LiveCollector>> {
        self.inner.live.as_ref()
    }
}

impl WorldBuilder {
    /// Number of MPI ranks (default 1). Zero is rejected by
    /// [`Self::build`].
    pub fn ranks(mut self, n: u32) -> Self {
        self.ranks = n;
        self
    }

    /// Map each rank to a cluster node (default: all on node 0).
    pub fn rank_on_node(mut self, f: impl Fn(u32) -> u32 + 'static) -> Self {
        self.node_of = Box::new(f);
        self
    }

    /// Critical-section arbitration method (default mutex — the paper's
    /// baseline). With several VCIs, every shard uses this arbitration
    /// for its own lock.
    pub fn lock(mut self, kind: LockKind) -> Self {
        self.lock = kind;
        self
    }

    /// Critical-section granularity (default global).
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Override the runtime cost model.
    pub fn costs(mut self, c: RuntimeCosts) -> Self {
        self.costs = c;
        self
    }

    /// Give every rank an RMA window of `bytes` bytes.
    pub fn window_bytes(mut self, bytes: usize) -> Self {
        self.window_bytes = bytes;
        self
    }

    /// Declare that this world will service one-sided operations, so
    /// [`Self::build`] can reject a zero-byte window up front instead of
    /// letting the first `put` fault at the target.
    pub fn expect_rma(mut self, on: bool) -> Self {
        self.expect_rma = on;
        self
    }

    /// Install a structured-event recorder (see [`mtmpi_obs`]). Without
    /// one, event sites cost a single branch.
    pub fn recorder(mut self, r: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(r);
        self
    }

    /// Size the world's event recorder to `shards` concurrent recording
    /// threads instead of the full [`mtmpi_obs::MAX_SHARDS`]-shard
    /// pre-allocation — a small world (an mtmpi-serve tenant runs a
    /// handful of simulated threads) has no use for 256 buffers. Without
    /// [`WorldBuilder::recorder`], `build` installs a right-sized
    /// [`RingRecorder`] itself; with one, the knob only validates (the
    /// caller already chose the recorder's geometry). Values above
    /// `MAX_SHARDS` are clamped; 0 is a loud
    /// [`BuildError::ZeroRecorderShards`].
    pub fn recorder_shards(mut self, shards: usize) -> Self {
        self.recorder_shards = Some(shards);
        self
    }

    /// Install an online collector (see [`mtmpi_live`]). The collector
    /// must wrap the same recorder passed to [`WorldBuilder::recorder`];
    /// the runtime exposes its snapshots through [`World::live_stats`]
    /// but never pumps it — that is the harness's collector thread's
    /// job.
    pub fn live(mut self, c: Arc<mtmpi_live::LiveCollector>) -> Self {
        self.live = Some(c);
        self
    }

    /// Abort blocking waits after this much virtual/model time (a
    /// liveness guard that turns communication bugs into loud failures).
    pub fn liveness_limit_ns(mut self, ns: u64) -> Self {
        self.liveness_limit_ns = ns;
        self
    }

    /// Bound the run to at most `max_events` scheduler events (the x07
    /// determinism contract): on the virtual platform an exhausted bound
    /// fails `try_run` with `SimError::FuelExhausted` carrying a
    /// per-thread blocked-state snapshot, instead of spinning forever.
    /// Complements [`Self::liveness_limit_ns`]: fuel counts *events*, so
    /// a tight livelock (which advances virtual time only slowly) trips
    /// it long before the virtual-time guard. The `MTMPI_FUEL` env var
    /// provides the same bound without a code change; this builder
    /// setting wins when both are present.
    pub fn fuel(mut self, max_events: u64) -> Self {
        self.fuel = Some(max_events);
        self
    }

    /// Inject deterministic link faults (see [`mtmpi_net::FaultPlan`])
    /// and enable the runtime's recovery machinery: sequenced sends with
    /// cumulative acks, a retransmit queue with exponential backoff, and
    /// typed error escalation. An inert plan ([`FaultPlan::is_active`]
    /// false, e.g. [`FaultPlan::none`]) leaves the runtime exactly on its
    /// fault-free fast paths — byte-identical results to not calling this
    /// at all.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Shard every rank's runtime state into `n` virtual communication
    /// interfaces routed by the default hash [`VciMap`] (default 1 — the
    /// paper's single global critical section). Zero is rejected by
    /// [`Self::build`].
    pub fn vci_count(mut self, n: u32) -> Self {
        self.vci_count = n;
        self.vci_map = None;
        self
    }

    /// Shard with an explicit [`VciMap`] (hash policy, tag buckets, or a
    /// custom binding); the map's count decides the number of shards.
    pub fn vci_map(mut self, map: VciMap) -> Self {
        self.vci_count = map.count();
        self.vci_map = Some(map);
        self
    }

    /// Give every rank `n` stream shards (default 0): single-owner VCIs
    /// a thread binds to with [`RankHandle::stream`] for the lock-free
    /// fast path. They extend the pool *after* the sharded VCIs, so
    /// `streams(0)` leaves the build byte-identical to a pre-stream
    /// world. Requires `vci_count >= 1` (checked by [`Self::build`]) —
    /// unbound and wildcard traffic still needs the sharded path.
    pub fn streams(mut self, n: u32) -> Self {
        self.streams = n;
        self
    }

    /// Construct the world: validates the configuration, then registers
    /// one endpoint and one (or two, for [`Granularity::PerQueue`]) locks
    /// per rank *per VCI* on the platform, in (rank, vci) order — the
    /// creation order is part of the deterministic-replay contract.
    pub fn build(self) -> Result<World, BuildError> {
        if self.ranks == 0 {
            return Err(BuildError::ZeroRanks);
        }
        if self.streams > 0 && self.vci_count == 0 {
            return Err(BuildError::StreamsWithoutVcis {
                streams: self.streams,
            });
        }
        if self.vci_count == 0 {
            return Err(BuildError::ZeroVcis);
        }
        if self.expect_rma && self.window_bytes == 0 {
            return Err(BuildError::ZeroWindowWithRma);
        }
        let recorder = match self.recorder_shards {
            Some(0) => return Err(BuildError::ZeroRecorderShards),
            // Right-size the recorder to the requested seat count. An
            // explicitly installed recorder wins — the caller already
            // chose its geometry — so the knob only validated.
            Some(n) => self.recorder.or_else(|| {
                Some(Arc::new(RingRecorder::with_shards(
                    n.min(MAX_SHARDS),
                    DEFAULT_SHARD_CAP,
                )) as Arc<dyn Recorder>)
            }),
            None => self.recorder,
        };
        let vci_map = self.vci_map.unwrap_or_else(|| VciMap::new(self.vci_count));
        if let Some(f) = self.fuel {
            self.platform.set_fuel(Some(f));
        }
        let platform_nodes = self.platform.node_count();
        let active_plan = self.fault_plan.filter(FaultPlan::is_active);
        let mut procs = Vec::with_capacity(self.ranks as usize);
        for r in 0..self.ranks {
            let node = (self.node_of)(r);
            if let Some(nodes) = platform_nodes {
                if node >= nodes {
                    return Err(BuildError::NodeOutOfRange {
                        rank: r,
                        node,
                        nodes,
                    });
                }
            }
            // Stream shards extend the pool after the sharded VCIs, with
            // the same per-shard platform registrations (endpoint + lock
            // ids) so the symmetric same-index endpoint pairing of
            // `send_data` holds for stream↔stream traffic too. Their
            // locks exist but are never taken: a bound stream reaches
            // its state through `stream_pass`. With `streams == 0` the
            // creation sequence is exactly the PR-5 one (byte-identity).
            let shards = VciPool::build(self.vci_count + self.streams, |vci| {
                let endpoint = self.platform.register_endpoint(node);
                let cs_queue = self.platform.lock_create(self.lock);
                let cs_progress = if self.granularity.split_progress_lock() {
                    self.platform.lock_create(self.lock)
                } else {
                    cs_queue
                };
                Shard {
                    endpoint,
                    cs_queue,
                    cs_progress,
                    last_poll_ns: AtomicU64::new(0),
                    stream_owner: AtomicU64::new(0),
                    // RMA state is pinned to VCI 0 (one window per rank,
                    // one token space); other shards carry none.
                    state: UnsafeCell::new(SharedState::new(
                        self.ranks,
                        if vci == 0 { self.window_bytes } else { 0 },
                        active_plan.clone(),
                    )),
                }
            });
            procs.push(Process {
                shards,
                wild: SharedLedger::new(),
            });
        }
        Ok(World {
            inner: Arc::new(WorldInner {
                platform: self.platform,
                costs: self.costs,
                granularity: self.granularity,
                procs,
                liveness_limit_ns: self.liveness_limit_ns,
                selective: matches!(self.lock, LockKind::Selective),
                lock: self.lock,
                vci_map,
                streams: self.streams,
                recorder,
                live: self.live,
                faults_enabled: active_plan.is_some(),
                aborted: AtomicBool::new(false),
            }),
        })
    }

    /// [`Self::build`], panicking on an invalid configuration — the
    /// `expect` path for examples and tests where misconfiguration is a
    /// bug, not an input.
    pub fn build_unchecked(self) -> World {
        self.build()
            .unwrap_or_else(|e| panic!("invalid world configuration: {e}"))
    }
}

/// Per-thread handle for issuing MPI calls as one rank.
#[derive(Clone)]
pub struct RankHandle {
    pub(crate) world: Arc<WorldInner>,
    pub(crate) rank: u32,
}

impl RankHandle {
    /// This handle's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total ranks in the world.
    pub fn nranks(&self) -> u32 {
        self.world.nranks()
    }

    /// The platform (for `compute`, `now_ns`, …).
    pub fn platform(&self) -> &Arc<dyn Platform> {
        &self.world.platform
    }
}
