//! Stream handles: the stream-bound lock-free fast path.
//!
//! A [`Stream`] is an explicit serial context in the MPIxThreads /
//! endpoints tradition: one thread binds one stream shard (a
//! single-owner VCI appended after the sharded pool) and from then on
//! issues and progresses on it with **zero CAS and zero lock** — the
//! shard's queues, sequence/retransmit state, and match lists are plain,
//! made sound by the single-binder claim word on the shard
//! (`stream_owner`).
//!
//! ## Pairing
//!
//! The runtime's endpoint pairing is symmetric by shard index, so
//! stream `s` of rank A exchanges messages with stream `s` of rank B —
//! an explicit channel, like an endpoints communicator. Stream traffic
//! never lands on the sharded VCIs, and sharded wildcard receives never
//! observe it (the documented relaxation mirroring DESIGN.md §12:
//! choosing a serial context *is* choosing a matching scope).
//!
//! ## Bind → unbind → rebind hand-off
//!
//! Binding CASes the claim word 0 → `tid+1` (AcqRel); dropping (or
//! [`Stream::unbind`]-ing) the handle first quiesces the shard —
//! draining its mailbox so no packet is stranded mid-hand-off — then
//! stores 0 with Release. The next binder's Acquire CAS therefore
//! observes every plain write of the previous owner. The loom model in
//! `tests/loom_stream.rs` checks exactly this protocol.
//!
//! Wildcard receives (`src = None`) cannot be pinned to a serial
//! context; they fall back transparently to the sharded claim-token
//! fan-out path, and the stream's completion calls delegate such
//! requests back to the rank-level paths.

use crate::errors::{MpiError, StreamBindError};
use crate::p2p::{cancel_in_cs, issue_recv, issue_send, try_free_in_cs, wait_step, WaitStep};
use crate::progress::{deliver, poll};
use crate::request::{Request, TestOutcome};
use crate::state::SharedState;
use crate::types::{CommId, Msg, MsgData, Tag};
use crate::world::{RankHandle, World};
use mtmpi_locks::PathClass;
use mtmpi_obs::{CsOp, Path};

/// A bound serial context: one thread's exclusive, lock-free slice of
/// the runtime. Deliberately **not `Clone`** — the handle is the
/// single-binder capability, and dropping it is the unbind.
pub struct Stream {
    h: RankHandle,
    sid: u32,
    /// Pool index of the bound shard (`vci_n + sid`).
    shard: u32,
}

impl World {
    /// Bind the first free stream of `rank` for the calling thread.
    /// Panics when none is free — see [`RankHandle::try_stream`].
    pub fn stream(&self, rank: u32) -> Stream {
        self.rank(rank).stream()
    }
}

impl RankHandle {
    /// Bind the first free stream of this rank for the calling thread.
    pub fn try_stream(&self) -> Result<Stream, StreamBindError> {
        let n = self.world.streams;
        for sid in 0..n {
            match self.try_stream_at(sid) {
                Ok(s) => return Ok(s),
                Err(StreamBindError::AlreadyBound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Err(StreamBindError::AllBound {
            rank: self.rank,
            streams: n,
        })
    }

    /// [`Self::try_stream`], panicking with the [`StreamBindError`] when
    /// every stream is bound (or the world has none).
    pub fn stream(&self) -> Stream {
        self.try_stream().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Bind stream `sid` of this rank for the calling thread. Fails when
    /// the index is out of range or another live [`Stream`] holds it.
    pub fn try_stream_at(&self, sid: u32) -> Result<Stream, StreamBindError> {
        self.world.try_bind_stream(self.rank, sid)?;
        Ok(Stream {
            h: self.clone(),
            sid,
            shard: self.world.stream_shard(sid),
        })
    }

    /// [`Self::try_stream_at`], panicking with the [`StreamBindError`]
    /// on a contested or out-of-range stream.
    pub fn stream_at(&self, sid: u32) -> Stream {
        self.try_stream_at(sid).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Stream {
    /// The stream index this handle is bound to.
    pub fn sid(&self) -> u32 {
        self.sid
    }

    /// This stream's rank.
    pub fn rank(&self) -> u32 {
        self.h.rank()
    }

    /// Total ranks in the world.
    pub fn nranks(&self) -> u32 {
        self.h.nranks()
    }

    /// The rank handle this stream was bound through (for issuing
    /// sharded-path operations from the same thread).
    pub fn rank_handle(&self) -> &RankHandle {
        &self.h
    }

    /// One owner-mode passage through the bound shard.
    fn pass<R>(&self, op: CsOp, f: impl FnOnce(&mut SharedState) -> R) -> R {
        // SAFETY: `self` is the live binding capability — this thread's
        // id sits in the shard's claim word until `self` drops.
        unsafe { self.h.world.stream_pass(self.h.rank, self.shard, op, f) }
    }

    /// Whether `req` belongs to the sharded path (wildcard fan-out or a
    /// map-routed receive) and must be completed by the rank-level
    /// completion calls instead of owner-mode passages.
    fn delegated(&self, req: &Request) -> bool {
        req.inner.multi || req.inner.vci < self.h.world.vci_n()
    }

    /// Nonblocking send on the world communicator, issued on this
    /// stream: the payload is injected from the stream's shard and
    /// arrives at the *same-index stream* of `dst` (see the module
    /// docs on pairing). No lock, no CAS.
    pub fn isend(&self, dst: u32, tag: Tag, data: MsgData) -> Request {
        let w = &self.h.world;
        assert!(dst < w.nranks(), "destination rank out of range");
        let costs = w.costs;
        w.platform.compute(costs.call_overhead_ns);
        if w.granularity.alloc_outside_cs() {
            w.platform.compute(costs.alloc_ns + 2 * costs.atomic_ns);
        }
        let src_rank = self.h.rank;
        let tid = w.platform.current_tid();
        let shard = self.shard;
        let inner = self.pass(CsOp::Isend, |st| {
            issue_send(w, st, src_rank, shard, tid, CommId::WORLD, dst, tag, data)
        });
        Request { inner }
    }

    /// Nonblocking receive on the world communicator, matched on this
    /// stream. A known source runs lock-free against the stream shard's
    /// own match lists; a wildcard (`src = None`) cannot be pinned to a
    /// serial context and falls back to the sharded fan-out path (its
    /// request is then completed by delegation — `try_wait`/`test` on
    /// this stream handle it transparently).
    pub fn irecv(&self, src: Option<u32>, tag: Option<Tag>) -> Request {
        let w = &self.h.world;
        let Some(s) = src else {
            return self.h.irecv_impl(CommId::WORLD, None, tag);
        };
        assert!(s < w.nranks(), "source rank out of range");
        let costs = w.costs;
        w.platform.compute(costs.call_overhead_ns);
        if w.granularity.alloc_outside_cs() {
            w.platform.compute(costs.alloc_ns + 2 * costs.atomic_ns);
        }
        let rank = self.h.rank;
        let tid = w.platform.current_tid();
        let shard = self.shard;
        let inner = self.pass(CsOp::Irecv, |st| {
            issue_recv(w, st, rank, shard, tid, CommId::WORLD, Some(s), tag)
        });
        Request { inner }
    }

    /// Blocking send on this stream.
    pub fn send(&self, dst: u32, tag: Tag, data: MsgData) {
        let r = self.isend(dst, tag, data);
        let _ = self.wait(r);
    }

    /// Blocking receive on this stream.
    pub fn recv(&self, src: Option<u32>, tag: Option<Tag>) -> Msg {
        let r = self.irecv(src, tag);
        self.wait(r)
    }

    /// Nonblocking completion test: one owner-mode passage (check, one
    /// mailbox poll, re-check). Delegates sharded-path requests.
    pub fn test(&self, req: Request) -> TestOutcome {
        if self.delegated(&req) {
            return self.h.test(req);
        }
        let w = &self.h.world;
        assert_eq!(
            req.inner.owner_rank, self.h.rank,
            "test on another rank's request"
        );
        assert_eq!(
            req.inner.vci, self.shard,
            "request was issued on another stream"
        );
        w.platform.compute(w.costs.call_overhead_ns);
        let rank = self.h.rank;
        let shard = self.shard;
        let out = self.pass(CsOp::Test, |st| {
            // SAFETY: owner-mode passage — this thread holds the shard.
            if let Some(m) = unsafe { try_free_in_cs(w, st, rank, &req) } {
                return Some(m);
            }
            let pkts = poll(w, rank, shard, PathClass::Main, Path::Stream);
            deliver(w, rank, shard, st, pkts);
            // SAFETY: owner-mode passage.
            unsafe { try_free_in_cs(w, st, rank, &req) }
        });
        match out {
            Some(m) => TestOutcome::Done(m),
            None => TestOutcome::Pending(req),
        }
    }

    /// Fallible blocking wait on this stream: poll-spin in owner mode —
    /// no lock class to drop to, no arbitration — until the request
    /// completes, a fault escalates, or the liveness limit trips.
    /// Delegates sharded-path requests (wildcard fallback) to
    /// [`RankHandle::try_wait`].
    ///
    /// On error a still-pending receive is cancelled first, so the
    /// request ledger stays quiescent.
    pub fn try_wait(&self, req: Request) -> Result<Msg, MpiError> {
        if self.delegated(&req) {
            return self.h.try_wait(req);
        }
        let w = &self.h.world;
        assert_eq!(
            req.inner.owner_rank, self.h.rank,
            "wait on another rank's request"
        );
        assert_eq!(
            req.inner.vci, self.shard,
            "request was issued on another stream"
        );
        let costs = w.costs;
        w.platform.compute(costs.call_overhead_ns);
        let rank = self.h.rank;
        let shard = self.shard;
        let start = w.platform.now_ns();
        loop {
            let step = self.pass(CsOp::Wait, |st| {
                // SAFETY: owner-mode passage.
                if let Some(m) = unsafe { try_free_in_cs(w, st, rank, &req) } {
                    return WaitStep::Done(m);
                }
                let pkts = poll(w, rank, shard, PathClass::Main, Path::Stream);
                deliver(w, rank, shard, st, pkts);
                wait_step(w, st, rank, &req)
            });
            match step {
                WaitStep::Done(m) => return Ok(m),
                WaitStep::Fail(e) => return Err(e),
                WaitStep::Pending => {}
            }
            w.platform.compute(costs.poll_gap_ns);
            if let Some(waited_ns) = self.h.liveness_exceeded(start) {
                let last = self.pass(CsOp::Wait, |st| {
                    // SAFETY: owner-mode passage.
                    if let Some(m) = unsafe { try_free_in_cs(w, st, rank, &req) } {
                        return Some(m);
                    }
                    // SAFETY: owner-mode passage.
                    unsafe { cancel_in_cs(w, st, rank, &req) };
                    None
                });
                return match last {
                    Some(m) => Ok(m),
                    None => Err(MpiError::Timeout {
                        rank,
                        what: "wait",
                        waited_ns,
                    }),
                };
            }
        }
    }

    /// Blocking completion wait. Panics (with the [`MpiError`] message)
    /// on timeout or unreachable peer — see [`Self::try_wait`].
    pub fn wait(&self, req: Request) -> Msg {
        self.try_wait(req).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible wait for all requests; returns their messages in order.
    /// Batched like [`RankHandle::try_waitall`]: each iteration is **one**
    /// owner-mode passage that sweep-frees every completed request and
    /// polls the shard once if any remain — a window of 64 operations
    /// costs a handful of passages, not 64. Sharded-path requests
    /// (wildcard fallback) are completed through [`RankHandle::try_waitall`]
    /// after the owned set settles. On error, completed requests are
    /// freed and pending ones cancelled, keeping the ledger quiescent.
    pub fn try_waitall(&self, reqs: Vec<Request>) -> Result<Vec<Msg>, MpiError> {
        let w = &self.h.world;
        let rank = self.h.rank;
        let shard = self.shard;
        let costs = w.costs;
        let n = reqs.len();
        let mut out: Vec<Option<Msg>> = (0..n).map(|_| None).collect();
        let mut owned: Vec<(usize, Request)> = Vec::new();
        let mut del: Vec<(usize, Request)> = Vec::new();
        for (i, r) in reqs.into_iter().enumerate() {
            if self.delegated(&r) {
                del.push((i, r));
                continue;
            }
            assert_eq!(
                r.inner.owner_rank, rank,
                "waitall on another rank's request"
            );
            assert_eq!(r.inner.vci, shard, "request was issued on another stream");
            owned.push((i, r));
        }
        w.platform.compute(costs.call_overhead_ns);
        let start = w.platform.now_ns();
        while !owned.is_empty() {
            let fail = self.pass(CsOp::Waitall, |st| {
                let mut sweep = |st: &mut SharedState, owned: &mut Vec<(usize, Request)>| {
                    owned.retain(|(i, r)| {
                        // SAFETY: owner-mode passage.
                        match unsafe { try_free_in_cs(w, st, rank, r) } {
                            Some(m) => {
                                out[*i] = Some(m);
                                false
                            }
                            None => true,
                        }
                    });
                };
                sweep(st, &mut owned);
                if !owned.is_empty() {
                    let pkts = poll(w, rank, shard, PathClass::Main, Path::Stream);
                    deliver(w, rank, shard, st, pkts);
                    sweep(st, &mut owned);
                }
                st.fault_error.clone()
            });
            if let Some(e) = fail {
                let rest = std::mem::take(&mut owned);
                self.pass(CsOp::Waitall, |st| {
                    for (i, r) in &rest {
                        // SAFETY: owner-mode passage.
                        if let Some(m) = unsafe { try_free_in_cs(w, st, rank, r) } {
                            out[*i] = Some(m);
                        } else {
                            // SAFETY: owner-mode passage.
                            unsafe { cancel_in_cs(w, st, rank, r) };
                        }
                    }
                });
                for (_, r) in del.drain(..) {
                    self.abandon(r);
                }
                return Err(e);
            }
            if !owned.is_empty() {
                w.platform.compute(costs.poll_gap_ns);
                if let Some(waited_ns) = self.h.liveness_exceeded(start) {
                    // Final check-and-cancel sweep: anything that made it
                    // in since the last poll is freed, the rest cancelled.
                    let rest = std::mem::take(&mut owned);
                    let mut cancelled = false;
                    self.pass(CsOp::Waitall, |st| {
                        for (i, r) in &rest {
                            // SAFETY: owner-mode passage.
                            if let Some(m) = unsafe { try_free_in_cs(w, st, rank, r) } {
                                out[*i] = Some(m);
                            } else {
                                // SAFETY: owner-mode passage.
                                unsafe { cancel_in_cs(w, st, rank, r) };
                                cancelled = true;
                            }
                        }
                    });
                    if cancelled {
                        for (_, r) in del.drain(..) {
                            self.abandon(r);
                        }
                        return Err(MpiError::Timeout {
                            rank,
                            what: "waitall",
                            waited_ns,
                        });
                    }
                }
            }
        }
        if !del.is_empty() {
            let idx: Vec<usize> = del.iter().map(|(i, _)| *i).collect();
            let reqs: Vec<Request> = del.into_iter().map(|(_, r)| r).collect();
            // Errors abandon the delegated set inside try_waitall; the
            // owned set is already freed at this point.
            let msgs = self.h.try_waitall(reqs)?;
            for (i, m) in idx.into_iter().zip(msgs) {
                out[i] = Some(m);
            }
        }
        // lint: allow(L005) invariant — the loops above fill every slot before falling through
        Ok(out.into_iter().map(|m| m.expect("all completed")).collect())
    }

    /// Wait for all requests; returns their messages in order. Panics on
    /// timeout/unreachable peer — see [`Self::try_waitall`].
    pub fn waitall(&self, reqs: Vec<Request>) -> Vec<Msg> {
        self.try_waitall(reqs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Error-path cleanup for one request: free it if complete, cancel
    /// it otherwise. Sharded-path requests are settled under their own
    /// shard's queue lock (or the claim-token protocol for fan-outs).
    fn abandon(&self, req: Request) {
        let w = &self.h.world;
        let rank = self.h.rank;
        if req.inner.multi {
            let _ = crate::p2p::cancel_multi(w, rank, &req);
            return;
        }
        if req.inner.vci < w.vci_n() {
            w.cs_on(
                rank,
                req.inner.vci,
                PathClass::Progress,
                Path::WaitSpin,
                CsOp::Wait,
                |st| {
                    // SAFETY: queue lock held.
                    if unsafe { try_free_in_cs(w, st, rank, &req) }.is_some() {
                        return;
                    }
                    // SAFETY: queue lock held.
                    unsafe { cancel_in_cs(w, st, rank, &req) };
                },
            );
            return;
        }
        self.pass(CsOp::Wait, |st| {
            // SAFETY: owner-mode passage.
            if unsafe { try_free_in_cs(w, st, rank, &req) }.is_some() {
                return;
            }
            // SAFETY: owner-mode passage.
            unsafe { cancel_in_cs(w, st, rank, &req) };
        });
    }

    /// Quiesce and release the binding (identical to dropping the
    /// handle, but reads as intent at call sites): drains the shard's
    /// mailbox so no in-flight packet is stranded, then publishes every
    /// plain write with a Release store of the claim word. The stream is
    /// immediately rebindable — by this thread or any other.
    pub fn unbind(self) {
        drop(self);
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let w = &self.h.world;
            let rank = self.h.rank;
            let shard = self.shard;
            // Quiesce step of the hand-off: drain the mailbox so the
            // next binder starts from a settled shard (packets already
            // in flight land in the unexpected queue, where its receives
            // will find them).
            // SAFETY: still bound until the release below.
            unsafe {
                w.stream_pass(rank, shard, CsOp::Progress, |st| {
                    let pkts = poll(w, rank, shard, PathClass::Progress, Path::Stream);
                    deliver(w, rank, shard, st, pkts);
                });
            }
        }
        self.h.world.release_stream(self.h.rank, self.sid);
    }
}
