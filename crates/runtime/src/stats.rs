//! The unified post-run introspection snapshot.
//!
//! [`RankStats`] collapses what used to be five ad-hoc `World` getters
//! (`dangling_report`, `cs_acquisitions`, `max_unexpected`,
//! `request_ledger`, `window_snapshot`) into one struct, and carries the
//! observability additions (CS wait/hold and message-latency histograms)
//! alongside. Obtain one with [`crate::World::stats`] after
//! `Platform::run` has returned.

use mtmpi_check::RequestLedger;
use mtmpi_metrics::{DanglingSampler, Histogram};
use mtmpi_sim::LockKind;

/// Everything one rank's runtime knows about itself after a run.
#[derive(Debug, Clone)]
pub struct RankStats {
    /// Arbitration of the rank's critical-section lock.
    pub lock: LockKind,
    /// Total critical-section acquisitions by this rank's threads.
    pub cs_acquisitions: u64,
    /// Queue-lock wait times (request → grant), one sample per entry.
    pub cs_wait_ns: Histogram,
    /// Queue-lock hold times (grant → release), one sample per entry.
    pub cs_hold_ns: Histogram,
    /// Receive-side message latency (send issue → local match).
    pub msg_latency_ns: Histogram,
    /// The §4.4 dangling-request sampler (fed at each CS acquisition).
    pub dangling: DanglingSampler,
    /// Request life-cycle counters (Issue/Post/Complete/Free).
    pub ledger: RequestLedger,
    /// Unexpected-queue high-water mark.
    pub max_unexpected: usize,
    /// Posted-queue high-water mark.
    pub max_posted: usize,
    /// Contents of the rank's RMA window (empty when none configured).
    pub window: Vec<u8>,
}
