//! The communication progress engine (paper Fig 6a's "progress loop").
//!
//! With VCI sharding, progress is per-shard: each VCI has its own
//! endpoint, reorder buffers, match queues, and retransmit state, so one
//! progress pass polls one shard under that shard's lock. The fan-out
//! entries of multi-shard wildcard receives are resolved here via the
//! request claim token (see [`crate::request::ReqInner`]).

use crate::errors::MpiError;
use crate::faults::{process_ack, pump_retransmits, send_ack};
use crate::packet::{Packet, PacketKind, RmaOp};
use crate::state::{matches, SeqPacket, SharedState, UnexMsg};
use crate::types::{Msg, MsgData};
use crate::world::WorldInner;
use mtmpi_locks::PathClass;
use mtmpi_obs::{CsOp, EventKind, Path, ReqPhase};
use std::sync::atomic::Ordering;

/// Drain the platform mailbox for one shard of `rank`. Charges the poll
/// cost. May be called with or without the queue lock held (it touches no
/// shared state). `class` arbitrates nothing here; `opath` is the
/// observability path stamped into the poll-batch event — usually
/// `obs_path(class)`, but blocking waits spinning on the progress class
/// report [`Path::WaitSpin`] instead (they are application threads, not
/// the progress engine).
pub(crate) fn poll(
    w: &WorldInner,
    rank: u32,
    vci: u32,
    _class: PathClass,
    opath: Path,
) -> Vec<Packet> {
    let sh = w.shard(rank, vci);
    w.platform.compute(w.costs.poll_base_ns);
    // Starvation signal for work stealing (monitoring only).
    sh.last_poll_ns
        .store(w.platform.now_ns(), Ordering::Relaxed);
    let pkts: Vec<Packet> = w
        .platform
        .net_poll(sh.endpoint)
        .into_iter()
        .map(|b| {
            *b.downcast::<Packet>()
                .expect("mailbox carries runtime packets")
        })
        .collect();
    w.rec_now(|| EventKind::PollBatch {
        rank,
        vci,
        path: opath,
        packets: pkts.len() as u32,
    });
    pkts
}

/// Deliver polled packets into one shard's matching engine. Caller must
/// hold that shard's queue lock (i.e. run inside `WorldInner::cs`). On
/// fault runs this also processes acks, drops duplicates, acknowledges
/// progress back to the senders, and pumps the retransmit queue.
pub(crate) fn deliver(
    w: &WorldInner,
    rank: u32,
    vci: u32,
    st: &mut SharedState,
    pkts: Vec<Packet>,
) {
    if st.faults.is_none() {
        for pkt in pkts {
            let src = pkt.src as usize;
            st.reorder[src].push(SeqPacket(pkt));
            // Deliver every in-order packet from this source (MPI
            // non-overtaking: matching order follows send order per pair).
            while st.reorder[src]
                .peek()
                .is_some_and(|sp| sp.0.seq == st.recv_next_seq[src])
            {
                let sp = st.reorder[src].pop().expect("peeked");
                st.recv_next_seq[src] += 1;
                process_in_order(w, rank, vci, st, sp.0);
            }
        }
        return;
    }
    // Fault path: packets may be duplicated, reordered arbitrarily far,
    // or be pure acks; every advance (and every duplicate, whose sender
    // evidently missed our ack) is re-acknowledged.
    let mut want_ack = vec![false; st.recv_next_seq.len()];
    for pkt in pkts {
        let src = pkt.src as usize;
        process_ack(st, pkt.src, pkt.ack);
        if matches!(pkt.kind, PacketKind::Ack) {
            continue;
        }
        if pkt.seq < st.recv_next_seq[src] {
            // Already delivered: a duplicate (injected, or a retransmit
            // racing our ack). Drop it and re-ack so the sender stops.
            w.rec_now(|| EventKind::DupDrop {
                rank,
                src: pkt.src,
                seq: pkt.seq,
            });
            want_ack[src] = true;
            continue;
        }
        st.reorder[src].push(SeqPacket(pkt));
        loop {
            match st.reorder[src].peek() {
                Some(sp) if sp.0.seq <= st.recv_next_seq[src] => {}
                _ => break,
            }
            let sp = st.reorder[src].pop().expect("peeked");
            if sp.0.seq < st.recv_next_seq[src] {
                // Duplicate that was buffered before its twin delivered.
                w.rec_now(|| EventKind::DupDrop {
                    rank,
                    src: sp.0.src,
                    seq: sp.0.seq,
                });
                continue;
            }
            st.recv_next_seq[src] += 1;
            want_ack[src] = true;
            process_in_order(w, rank, vci, st, sp.0);
        }
    }
    for (src, wanted) in want_ack.iter().enumerate() {
        if *wanted && src != rank as usize {
            send_ack(w, st, rank, vci, src as u32);
        }
    }
    pump_retransmits(w, st, rank, vci);
}

/// Handle one in-order packet on one shard.
fn process_in_order(w: &WorldInner, rank: u32, vci: u32, st: &mut SharedState, pkt: Packet) {
    // Flow terminus: the packet survived loss/duplication/reordering and
    // is being accepted in order — close the arrow its FlowSend opened.
    // Recorded before matching so the flow id pairs with the send even
    // when the message parks in the unexpected queue.
    w.rec_now(|| EventKind::FlowRecv {
        rank,
        src: pkt.src,
        vci,
        seq: pkt.seq,
    });
    match pkt.kind {
        PacketKind::Msg {
            comm,
            tag,
            data,
            sent_ns,
        } => {
            // Search the posted queue FIFO; charge per scanned entry.
            // Multi-shard wildcard entries need the claim protocol: a
            // stale (already-claimed) entry is lazily removed, a live one
            // must win the CAS before it may consume the message — losing
            // means another shard matched concurrently, so this shard's
            // copy is retired and the scan continues.
            let mut scanned = 0u64;
            let mut i = 0usize;
            let mut winner: Option<crate::state::PostedRecv> = None;
            while i < st.posted.len() {
                let pr = &st.posted[i];
                if pr.req.multi && pr.req.is_claimed() {
                    st.posted.remove(i);
                    continue;
                }
                scanned += 1;
                if matches(pr.src, pr.tag, pr.comm, pkt.src, tag, comm) {
                    if pr.req.multi && !pr.req.claim_complete() {
                        // Lost the cross-shard race after the match check.
                        st.posted.remove(i);
                        continue;
                    }
                    winner = st.posted.remove(i);
                    break;
                }
                i += 1;
            }
            w.platform.compute(scanned * w.costs.match_scan_ns);
            match winner {
                Some(pr) => {
                    w.platform.compute(w.costs.complete_ns);
                    let msg = Msg {
                        src: pkt.src,
                        tag,
                        data,
                    };
                    st.msg_latency_ns
                        .record(w.platform.now_ns().saturating_sub(sent_ns));
                    if pr.req.multi {
                        // Claimed above; publish via the multi hand-off.
                        // Multi requests are accounted on the process-wide
                        // wildcard ledger and deliberately excluded from
                        // this shard's dangling sampler: "dangling" is a
                        // per-CS-owner metric, and a fan-out request has
                        // no single owning shard.
                        // SAFETY: we won the completion claim.
                        unsafe { pr.req.multi_complete(msg) };
                        w.procs[rank as usize].wild.note_completed();
                    } else {
                        // SAFETY: queue lock held (caller contract).
                        unsafe { pr.req.complete(msg) };
                        st.dangling_now += 1;
                        st.ledger.note_completed();
                    }
                    w.rec_now(|| EventKind::Req {
                        rank,
                        vci,
                        phase: ReqPhase::Complete,
                    });
                    if w.selective {
                        // Selective wake-up (§9 future work): the owner of
                        // the freshly completed request is the thread most
                        // likely to do useful work next.
                        let sh = w.shard(rank, vci);
                        w.platform.lock_boost(sh.cs_queue, pr.req.owner_tid);
                    }
                }
                None => {
                    w.platform.compute(w.costs.enqueue_ns);
                    st.unexpected.push_back(UnexMsg {
                        src: pkt.src,
                        tag,
                        comm,
                        data,
                        sent_ns,
                    });
                    st.note_depths();
                }
            }
        }
        PacketKind::Rma {
            op,
            offset,
            data,
            token,
        } => {
            apply_rma(w, rank, vci, st, pkt.src, op, offset, data, token);
        }
        PacketKind::RmaAck { token, data } => {
            w.platform.compute(w.costs.complete_ns);
            st.rma_acks.insert(token, data);
        }
        PacketKind::Ack => {
            // Standalone acks are consumed before the reorder buffer;
            // reaching here is a sequencing bug.
            unreachable!("transport ack entered the in-order pipeline");
        }
    }
}

/// Apply a one-sided operation to the local window and send the ack.
#[allow(clippy::too_many_arguments)]
fn apply_rma(
    w: &WorldInner,
    rank: u32,
    vci: u32,
    st: &mut SharedState,
    origin: u32,
    op: RmaOp,
    offset: u64,
    data: MsgData,
    token: u64,
) {
    let off = offset as usize;
    let len = data.len() as usize;
    assert!(
        off + len <= st.win_mem.len(),
        "RMA beyond window: offset {off} + len {len} > {}",
        st.win_mem.len()
    );
    w.rec_now(|| EventKind::Rma {
        rank,
        origin,
        op: match op {
            RmaOp::Put => "put",
            RmaOp::Get { .. } => "get",
            RmaOp::Accumulate => "accumulate",
        },
        bytes: data.len(),
    });
    w.platform
        .compute(w.costs.complete_ns + w.costs.unexpected_copy_ns(len as u64));
    let reply = match op {
        RmaOp::Put => {
            if let MsgData::Bytes(b) = &data {
                st.win_mem[off..off + len].copy_from_slice(b);
            }
            None
        }
        RmaOp::Accumulate => {
            if let MsgData::Bytes(b) = &data {
                // Element-wise f64 add over 8-byte lanes; a trailing
                // partial lane is added bytewise (wrapping) to keep the
                // operation total.
                let dst = &mut st.win_mem[off..off + len];
                for (dc, sc) in dst.chunks_mut(8).zip(b.chunks(8)) {
                    if dc.len() == 8 && sc.len() == 8 {
                        let a = f64::from_le_bytes(dc.try_into().expect("8 bytes"));
                        let v = f64::from_le_bytes(sc.try_into().expect("8 bytes"));
                        dc.copy_from_slice(&(a + v).to_le_bytes());
                    } else {
                        for (d, s) in dc.iter_mut().zip(sc) {
                            *d = d.wrapping_add(*s);
                        }
                    }
                }
            }
            None
        }
        RmaOp::Get { real } => {
            let payload = if real {
                MsgData::Bytes(st.win_mem[off..off + len].to_vec())
            } else {
                MsgData::Synthetic(len as u64)
            };
            Some(payload)
        }
    };
    // Ack back to the origin (sequenced like any data packet on this
    // pair, and — on fault runs — retransmitted until acknowledged).
    let reply_bytes = reply.as_ref().map_or(0, MsgData::len) + w.costs.header_bytes;
    crate::faults::send_data(
        w,
        st,
        rank,
        vci,
        origin,
        reply_bytes,
        PacketKind::RmaAck { token, data: reply },
    );
}

/// One progress iteration of one shard from the given path class,
/// honouring the granularity mode's locking. `opath` is the observability
/// attribution (see [`poll`]). Returns the shard's sticky escalated fault
/// (if any) so multi-shard wait loops can surface errors from every shard
/// they pump, not just their home shard.
pub(crate) fn progress_once(
    w: &WorldInner,
    rank: u32,
    vci: u32,
    class: PathClass,
    opath: Path,
) -> Option<MpiError> {
    if w.granularity.split_progress_lock() {
        // The split progress lock is taken manually (no state access), so
        // its CS span is recorded here rather than in `WorldInner::cs`.
        let t_req = w.platform.now_ns();
        let (lock, token) = w.progress_lock(rank, vci, class);
        let t_acq = w.platform.now_ns();
        let pkts = poll(w, rank, vci, class, opath);
        let t_rel = w.platform.now_ns();
        w.platform.lock_release(lock, class, token);
        w.rec_at(t_rel, || EventKind::CsSpan {
            lock: lock.0 as u32,
            kind: w.lock.label(),
            path: opath,
            op: CsOp::Progress,
            vci,
            t_req,
            t_acq,
        });
        // On fault runs the queue CS is entered even with nothing polled:
        // the retransmit queue must be pumped for recovery to progress.
        if !pkts.is_empty() || w.faults_enabled {
            w.cs_on(rank, vci, class, opath, CsOp::Progress, |st| {
                deliver(w, rank, vci, st, pkts);
                st.fault_error.clone()
            })
        } else {
            None
        }
    } else {
        w.cs_on(rank, vci, class, opath, CsOp::Progress, |st| {
            let pkts = poll(w, rank, vci, class, opath);
            deliver(w, rank, vci, st, pkts);
            st.fault_error.clone()
        })
    }
}
