//! The communication progress engine (paper Fig 6a's "progress loop").

use crate::packet::{Packet, PacketKind, RmaOp};
use crate::state::{matches, SeqPacket, SharedState, UnexMsg};
use crate::types::{Msg, MsgData};
use crate::world::{obs_path, WorldInner};
use mtmpi_locks::PathClass;
use mtmpi_obs::{CsOp, EventKind, ReqPhase};

/// Drain the platform mailbox for `rank`. Charges the poll cost. May be
/// called with or without the queue lock held (it touches no shared
/// state). `class` is the path of the enclosing CS entry, stamped into
/// the poll-batch event.
pub(crate) fn poll(w: &WorldInner, rank: u32, class: PathClass) -> Vec<Packet> {
    let p = &w.procs[rank as usize];
    w.platform.compute(w.costs.poll_base_ns);
    let pkts: Vec<Packet> = w
        .platform
        .net_poll(p.endpoint)
        .into_iter()
        .map(|b| {
            *b.downcast::<Packet>()
                .expect("mailbox carries runtime packets")
        })
        .collect();
    w.rec_now(|| EventKind::PollBatch {
        rank,
        path: obs_path(class),
        packets: pkts.len() as u32,
    });
    pkts
}

/// Deliver polled packets into the matching engine. Caller must hold the
/// queue lock (i.e. run inside `WorldInner::cs`).
pub(crate) fn deliver(w: &WorldInner, rank: u32, st: &mut SharedState, pkts: Vec<Packet>) {
    for pkt in pkts {
        let src = pkt.src as usize;
        st.reorder[src].push(SeqPacket(pkt));
        // Deliver every in-order packet from this source (MPI
        // non-overtaking: matching order follows send order per pair).
        while st.reorder[src]
            .peek()
            .is_some_and(|sp| sp.0.seq == st.recv_next_seq[src])
        {
            let sp = st.reorder[src].pop().expect("peeked");
            st.recv_next_seq[src] += 1;
            process_in_order(w, rank, st, sp.0);
        }
    }
}

/// Handle one in-order packet.
fn process_in_order(w: &WorldInner, rank: u32, st: &mut SharedState, pkt: Packet) {
    match pkt.kind {
        PacketKind::Msg {
            comm,
            tag,
            data,
            sent_ns,
        } => {
            // Search the posted queue FIFO; charge per scanned entry.
            let mut scanned = 0u64;
            let pos = st.posted.iter().position(|pr| {
                scanned += 1;
                matches(pr.src, pr.tag, pr.comm, pkt.src, tag, comm)
            });
            w.platform.compute(scanned * w.costs.match_scan_ns);
            match pos {
                Some(i) => {
                    let pr = st.posted.remove(i).expect("index valid");
                    w.platform.compute(w.costs.complete_ns);
                    // SAFETY: queue lock held (caller contract).
                    unsafe {
                        pr.req.complete(Msg {
                            src: pkt.src,
                            tag,
                            data,
                        });
                    }
                    st.dangling_now += 1;
                    st.ledger.note_completed();
                    st.msg_latency_ns
                        .record(w.platform.now_ns().saturating_sub(sent_ns));
                    w.rec_now(|| EventKind::Req {
                        rank,
                        phase: ReqPhase::Complete,
                    });
                    if w.selective {
                        // Selective wake-up (§9 future work): the owner of
                        // the freshly completed request is the thread most
                        // likely to do useful work next.
                        let p = &w.procs[rank as usize];
                        w.platform.lock_boost(p.cs_queue, pr.req.owner_tid);
                    }
                }
                None => {
                    w.platform.compute(w.costs.enqueue_ns);
                    st.unexpected.push_back(UnexMsg {
                        src: pkt.src,
                        tag,
                        comm,
                        data,
                        sent_ns,
                    });
                    st.note_depths();
                }
            }
        }
        PacketKind::Rma {
            op,
            offset,
            data,
            token,
        } => {
            apply_rma(w, rank, st, pkt.src, op, offset, data, token);
        }
        PacketKind::RmaAck { token, data } => {
            w.platform.compute(w.costs.complete_ns);
            st.rma_acks.insert(token, data);
        }
    }
}

/// Apply a one-sided operation to the local window and send the ack.
#[allow(clippy::too_many_arguments)]
fn apply_rma(
    w: &WorldInner,
    rank: u32,
    st: &mut SharedState,
    origin: u32,
    op: RmaOp,
    offset: u64,
    data: MsgData,
    token: u64,
) {
    let off = offset as usize;
    let len = data.len() as usize;
    assert!(
        off + len <= st.win_mem.len(),
        "RMA beyond window: offset {off} + len {len} > {}",
        st.win_mem.len()
    );
    w.rec_now(|| EventKind::Rma {
        rank,
        origin,
        op: match op {
            RmaOp::Put => "put",
            RmaOp::Get { .. } => "get",
            RmaOp::Accumulate => "accumulate",
        },
        bytes: data.len(),
    });
    w.platform
        .compute(w.costs.complete_ns + w.costs.unexpected_copy_ns(len as u64));
    let reply = match op {
        RmaOp::Put => {
            if let MsgData::Bytes(b) = &data {
                st.win_mem[off..off + len].copy_from_slice(b);
            }
            None
        }
        RmaOp::Accumulate => {
            if let MsgData::Bytes(b) = &data {
                // Element-wise f64 add over 8-byte lanes; a trailing
                // partial lane is added bytewise (wrapping) to keep the
                // operation total.
                let dst = &mut st.win_mem[off..off + len];
                for (dc, sc) in dst.chunks_mut(8).zip(b.chunks(8)) {
                    if dc.len() == 8 && sc.len() == 8 {
                        let a = f64::from_le_bytes(dc.try_into().expect("8 bytes"));
                        let v = f64::from_le_bytes(sc.try_into().expect("8 bytes"));
                        dc.copy_from_slice(&(a + v).to_le_bytes());
                    } else {
                        for (d, s) in dc.iter_mut().zip(sc) {
                            *d = d.wrapping_add(*s);
                        }
                    }
                }
            }
            None
        }
        RmaOp::Get { real } => {
            let payload = if real {
                MsgData::Bytes(st.win_mem[off..off + len].to_vec())
            } else {
                MsgData::Synthetic(len as u64)
            };
            Some(payload)
        }
    };
    // Ack back to the origin (sequenced like any packet on this pair).
    let reply_bytes = reply.as_ref().map_or(0, MsgData::len) + w.costs.header_bytes;
    let seq = st.send_seq[origin as usize];
    st.send_seq[origin as usize] += 1;
    let p = &w.procs[rank as usize];
    let origin_ep = w.procs[origin as usize].endpoint;
    w.platform.net_send(
        p.endpoint,
        origin_ep,
        reply_bytes,
        Box::new(Packet {
            src: rank,
            seq,
            kind: PacketKind::RmaAck { token, data: reply },
        }),
    );
}

/// One progress iteration from the given path class, honouring the
/// granularity mode's locking.
pub(crate) fn progress_once(w: &WorldInner, rank: u32, class: PathClass) {
    if w.granularity.split_progress_lock() {
        // The split progress lock is taken manually (no state access), so
        // its CS span is recorded here rather than in `WorldInner::cs`.
        let t_req = w.platform.now_ns();
        let (lock, token) = w.progress_lock(rank, class);
        let t_acq = w.platform.now_ns();
        let pkts = poll(w, rank, class);
        let t_rel = w.platform.now_ns();
        w.platform.lock_release(lock, class, token);
        w.rec_at(t_rel, || EventKind::CsSpan {
            lock: lock.0 as u32,
            kind: w.lock.label(),
            path: obs_path(class),
            op: CsOp::Progress,
            t_req,
            t_acq,
        });
        if !pkts.is_empty() {
            w.cs(rank, class, CsOp::Progress, |st| deliver(w, rank, st, pkts));
        }
    } else {
        w.cs(rank, class, CsOp::Progress, |st| {
            let pkts = poll(w, rank, class);
            deliver(w, rank, st, pkts);
        });
    }
}
