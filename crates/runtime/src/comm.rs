//! The communicator-first issuing surface.
//!
//! A [`Comm`] pairs one rank's handle with one communicator id and is
//! the single way to issue two-sided operations: `world.rank(r)` gives
//! the per-thread [`RankHandle`], `rank.comm(id)` (or
//! [`RankHandle::world_comm`]) the issuing surface. The historical
//! free-method zoo (`isend`/`isend_on`/`send_on`/…) survives one
//! release as deprecated shims over the same implementations.
//!
//! Completion calls (`test`/`wait`/`waitall` and their `try_` forms)
//! are also mirrored here so a `Comm` is a self-sufficient handle — they
//! forward to the rank-level completion paths, which accept any request
//! issued on any communicator of the rank.

use crate::errors::MpiError;
use crate::request::{Request, TestOutcome};
use crate::types::{CommId, Msg, MsgData, Tag};
use crate::world::RankHandle;

/// One rank's issuing surface on one communicator. Cheap to clone; make
/// one per thread (it is `Send`, like the [`RankHandle`] it wraps).
#[derive(Clone)]
pub struct Comm {
    h: RankHandle,
    id: CommId,
}

impl RankHandle {
    /// Issuing surface for communicator `id` as this rank.
    pub fn comm(&self, id: CommId) -> Comm {
        Comm {
            h: self.clone(),
            id,
        }
    }

    /// Issuing surface for the world communicator as this rank.
    pub fn world_comm(&self) -> Comm {
        self.comm(CommId::WORLD)
    }
}

impl Comm {
    /// The communicator this handle issues on.
    pub fn id(&self) -> CommId {
        self.id
    }

    /// This handle's rank.
    pub fn rank(&self) -> u32 {
        self.h.rank()
    }

    /// Total ranks in the world.
    pub fn nranks(&self) -> u32 {
        self.h.nranks()
    }

    /// The rank handle this communicator issues through.
    pub fn rank_handle(&self) -> &RankHandle {
        &self.h
    }

    /// Nonblocking send.
    ///
    /// Under the eager model the request completes at issue time (the
    /// payload is buffered/injected); `wait` on it frees it immediately.
    pub fn isend(&self, dst: u32, tag: Tag, data: MsgData) -> Request {
        self.h.isend_impl(self.id, dst, tag, data)
    }

    /// Nonblocking receive. `None` = wildcard. A receive the VCI map can
    /// pin to one shard runs the classic single-CS protocol; otherwise
    /// it fans out to every shard (see the [`crate::p2p`] module docs).
    pub fn irecv(&self, src: Option<u32>, tag: Option<Tag>) -> Request {
        self.h.irecv_impl(self.id, src, tag)
    }

    /// Blocking send.
    pub fn send(&self, dst: u32, tag: Tag, data: MsgData) {
        let r = self.isend(dst, tag, data);
        let _ = self.h.wait(r);
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<u32>, tag: Option<Tag>) -> Msg {
        let r = self.irecv(src, tag);
        self.h.wait(r)
    }

    /// Fallible blocking send.
    pub fn try_send(&self, dst: u32, tag: Tag, data: MsgData) -> Result<(), MpiError> {
        let r = self.isend(dst, tag, data);
        self.h.try_wait(r).map(|_| ())
    }

    /// Fallible blocking receive.
    pub fn try_recv(&self, src: Option<u32>, tag: Option<Tag>) -> Result<Msg, MpiError> {
        let r = self.irecv(src, tag);
        self.h.try_wait(r)
    }

    /// Nonblocking completion test — see [`RankHandle::test`].
    pub fn test(&self, req: Request) -> TestOutcome {
        self.h.test(req)
    }

    /// Blocking completion wait — see [`RankHandle::wait`].
    pub fn wait(&self, req: Request) -> Msg {
        self.h.wait(req)
    }

    /// Fallible blocking wait — see [`RankHandle::try_wait`].
    pub fn try_wait(&self, req: Request) -> Result<Msg, MpiError> {
        self.h.try_wait(req)
    }

    /// Wait for all requests — see [`RankHandle::waitall`].
    pub fn waitall(&self, reqs: Vec<Request>) -> Vec<Msg> {
        self.h.waitall(reqs)
    }

    /// Fallible wait for all requests — see [`RankHandle::try_waitall`].
    pub fn try_waitall(&self, reqs: Vec<Request>) -> Result<Vec<Msg>, MpiError> {
        self.h.try_waitall(reqs)
    }
}
