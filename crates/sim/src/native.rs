//! The native platform: real threads, real locks, wall-clock time.
//!
//! The same runtime and application code that runs under the virtual
//! platform runs here against the genuine lock implementations from
//! `mtmpi-locks`. Time is wall time divided by `time_scale` (model
//! nanoseconds), so tests can compress simulated work; the network
//! mailbox applies the same [`NetModel`] delays in model-time.

use crate::platform::{LockId, LockKind, Payload, Platform, PlatformReport, ThreadDesc};
use mtmpi_locks::{
    ClhLock, CohortTicketLock, CsLock, CsToken, FutexMutex, McsLock, PathClass, PriorityTicketLock,
    TasLock, TicketLock, Traced, TtasLock,
};
use mtmpi_net::NetModel;
use mtmpi_topology::ClusterTopology;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Arriving {
    at: u64,
    seq: u64,
    payload: Payload,
}

impl PartialEq for Arriving {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Arriving {}
impl Ord for Arriving {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl PartialOrd for Arriving {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct NetState {
    mailboxes: Vec<Mutex<BinaryHeap<Arriving>>>,
    nic_free: Vec<AtomicU64>,
    ep_node: Vec<u32>,
    seq: AtomicU64,
}

/// A spawned-but-not-yet-run worker thread.
type PendingThread = (ThreadDesc, Box<dyn FnOnce() + Send>);

/// A registered critical-section lock with its acquisition trace.
type TracedLock = Arc<Traced<Box<dyn CsLock>>>;

/// Native execution platform.
pub struct NativePlatform {
    cluster: ClusterTopology,
    net: NetModel,
    /// Wall seconds per model second; < 1.0 compresses simulated work.
    time_scale: f64,
    epoch: Instant,
    locks: Mutex<Vec<TracedLock>>,
    netstate: Mutex<NetState>,
    threads: Mutex<Vec<PendingThread>>,
    seed: u64,
    rng_salt: AtomicU64,
}

thread_local! {
    static NATIVE_RNG: RefCell<Option<SmallRng>> = const { RefCell::new(None) };
    static NATIVE_TID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Process-wide native thread-id source (stable ids for obs events and
/// `lock_boost` addressing).
static NEXT_NATIVE_TID: AtomicU64 = AtomicU64::new(0);

impl NativePlatform {
    /// Create a native platform. `time_scale` of 1.0 means `compute(n)`
    /// burns `n` wall nanoseconds; smaller values compress.
    pub fn new(cluster: ClusterTopology, net: NetModel, time_scale: f64, seed: u64) -> Self {
        assert!(time_scale >= 0.0, "time scale must be non-negative");
        Self {
            cluster,
            net,
            time_scale,
            // lint: allow(L004) the native backend IS the wall-clock platform
            epoch: Instant::now(),
            locks: Mutex::new(Vec::new()),
            netstate: Mutex::new(NetState {
                mailboxes: Vec::new(),
                nic_free: Vec::new(),
                ep_node: Vec::new(),
                seq: AtomicU64::new(0),
            }),
            threads: Mutex::new(Vec::new()),
            seed,
            rng_salt: AtomicU64::new(1),
        }
    }

    fn build_lock(&self, kind: LockKind) -> Box<dyn CsLock> {
        match kind {
            LockKind::Mutex => Box::new(FutexMutex::new()),
            LockKind::Ticket => Box::new(TicketLock::new()),
            LockKind::Priority => Box::new(PriorityTicketLock::new()),
            LockKind::Cohort { budget } => {
                Box::new(CohortTicketLock::new(self.cluster.node.sockets, budget))
            }
            LockKind::Tas => Box::new(TasLock::default()),
            LockKind::Ttas => Box::new(TtasLock::default()),
            LockKind::Mcs => Box::new(McsLock::new()),
            LockKind::Clh => Box::new(ClhLock::new()),
            // Natively the selective hint has no consumer; FIFO is the
            // closest behaviour.
            LockKind::Selective => Box::new(TicketLock::new()),
        }
    }

    fn wall_to_model(&self, wall_ns: u64) -> u64 {
        if self.time_scale == 0.0 {
            wall_ns // scale 0 means "compute is free"; keep time identity
        } else {
            (wall_ns as f64 / self.time_scale) as u64
        }
    }
}

impl Platform for NativePlatform {
    fn now_ns(&self) -> u64 {
        self.wall_to_model(self.epoch.elapsed().as_nanos() as u64)
    }

    fn compute(&self, ns: u64) {
        if self.time_scale == 0.0 {
            return;
        }
        let wall_target = (ns as f64 * self.time_scale) as u64;
        // lint: allow(L004) the native backend IS the wall-clock platform
        let start = Instant::now();
        // Spin for short waits, sleep for long ones.
        while (start.elapsed().as_nanos() as u64) < wall_target {
            let remaining = wall_target - start.elapsed().as_nanos() as u64;
            if remaining > 200_000 {
                std::thread::sleep(std::time::Duration::from_nanos(remaining / 2));
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn yield_now(&self) {
        std::thread::yield_now();
    }

    fn rng_u64(&self) -> u64 {
        NATIVE_RNG.with(|r| {
            let mut r = r.borrow_mut();
            if r.is_none() {
                let salt = self.rng_salt.fetch_add(1, Ordering::Relaxed);
                *r = Some(SmallRng::seed_from_u64(
                    self.seed ^ salt.wrapping_mul(0x9E37_79B9),
                ));
            }
            r.as_mut().expect("just set").gen()
        })
    }

    fn lock_create(&self, kind: LockKind) -> LockId {
        let lock = Arc::new(Traced::new(self.build_lock(kind)));
        let mut locks = self.locks.lock();
        locks.push(lock);
        LockId(locks.len() - 1)
    }

    fn lock_acquire(&self, lock: LockId, class: PathClass) -> CsToken {
        let l = self.locks.lock()[lock.0].clone();
        l.acquire(class)
    }

    fn lock_release(&self, lock: LockId, class: PathClass, token: CsToken) {
        let l = self.locks.lock()[lock.0].clone();
        l.release(class, token);
    }

    fn register_endpoint(&self, node: u32) -> usize {
        assert!(node < self.cluster.nodes, "endpoint node out of range");
        let mut ns = self.netstate.lock();
        ns.ep_node.push(node);
        ns.mailboxes.push(Mutex::new(BinaryHeap::new()));
        while ns.nic_free.len() < self.cluster.nodes as usize {
            ns.nic_free.push(AtomicU64::new(0));
        }
        ns.ep_node.len() - 1
    }

    fn endpoint_count(&self) -> usize {
        self.netstate.lock().ep_node.len()
    }

    fn net_send(&self, src: usize, dst: usize, bytes: u64, payload: Payload) {
        let now = self.now_ns();
        let ns = self.netstate.lock();
        let src_node = ns.ep_node[src] as usize;
        let same = ns.ep_node[src] == ns.ep_node[dst];
        let mt = self.net.timing(same, bytes);
        // Advance the NIC watermark atomically (CAS loop).
        let nic = &ns.nic_free[src_node];
        let mut cur = nic.load(Ordering::Relaxed);
        let mut start;
        loop {
            start = cur.max(now);
            match nic.compare_exchange_weak(
                cur,
                start + mt.inject_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let at = start + mt.inject_ns + mt.wire_ns;
        let seq = ns.seq.fetch_add(1, Ordering::Relaxed);
        ns.mailboxes[dst].lock().push(Arriving { at, seq, payload });
    }

    fn net_poll(&self, endpoint: usize) -> Vec<Payload> {
        let now = self.now_ns();
        let ns = self.netstate.lock();
        let mut mb = ns.mailboxes[endpoint].lock();
        let mut pkts = Vec::new();
        while mb.peek().is_some_and(|a| a.at <= now) {
            pkts.push(mb.pop().expect("peeked").payload);
        }
        pkts
    }

    fn net_pending(&self, endpoint: usize) -> bool {
        let ns = self.netstate.lock();
        let pending = !ns.mailboxes[endpoint].lock().is_empty();
        pending
    }

    fn node_count(&self) -> Option<u32> {
        Some(self.cluster.nodes)
    }

    fn current_tid(&self) -> u64 {
        NATIVE_TID.with(|t| {
            if let Some(id) = t.get() {
                id
            } else {
                let id = NEXT_NATIVE_TID.fetch_add(1, Ordering::Relaxed);
                t.set(Some(id));
                id
            }
        })
    }

    fn spawn(&self, desc: ThreadDesc, f: Box<dyn FnOnce() + Send>) {
        assert!(
            desc.core.0 < self.cluster.node.total_cores(),
            "thread core out of range"
        );
        self.threads.lock().push((desc, f));
    }

    fn run(&self) -> PlatformReport {
        let threads: Vec<_> = std::mem::take(&mut *self.threads.lock());
        let topo = self.cluster.node.clone();
        let handles: Vec<_> = threads
            .into_iter()
            .map(|(desc, f)| {
                let socket = topo.socket_of(desc.core);
                let core = desc.core;
                std::thread::Builder::new()
                    .name(desc.name)
                    .spawn(move || {
                        mtmpi_locks::set_current_core(core, socket);
                        f();
                    })
                    .expect("spawn worker")
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let traces = self.locks.lock().iter().map(|l| l.snapshot()).collect();
        PlatformReport {
            end_ns: self.now_ns(),
            lock_traces: traces,
            sched_trace_hash: 0,
            events: 0,
        }
    }
}
