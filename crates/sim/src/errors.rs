//! Typed failures of the deterministic virtual platform.
//!
//! The x07-style determinism contract (SNIPPETS.md §2): a run either
//! completes, or it fails with a *typed, replayable* error carrying the
//! full per-thread blocked-state snapshot — never with a wall-clock
//! timeout or a silent hang. Two failure modes exist:
//!
//! * [`SimError::FuelExhausted`] — the fuel bound
//!   (`WorldBuilder::fuel(max_events)` / `MTMPI_FUEL`) ran out. This is
//!   how livelocks (threads spinning in `try_wait`, each spin re-pushing
//!   events forever) become deterministic diagnoses instead of hung test
//!   suites: the same seed + same fuel always stops on the same event,
//!   with the same snapshot.
//! * [`SimError::Deadlock`] — the event queue drained while threads are
//!   still live, i.e. every live thread is parked in a lock queue and no
//!   grant is scheduled. (A recv/recv deadlock never takes this shape:
//!   the wait loops *spin*, re-pushing events, so only the fuel bound
//!   catches it — see the fuel contract in DESIGN.md §16.)

use std::fmt;

/// What a live thread is blocked on at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedOn {
    /// Parked in the waiter queue (or pending grant) of a platform lock.
    Lock {
        /// Lock index (`LockId.0`).
        lock: usize,
    },
    /// Submitted an operation whose `Exec` event is still queued — the
    /// thread is mid-round-trip with the scheduler. `desc` is the op's
    /// debug rendering (e.g. `NetPoll(3)`), which is what names the
    /// mailbox/endpoint a spinning receiver is polling.
    Op {
        /// Debug rendering of the pending operation.
        desc: String,
    },
    /// A queued event (start or grant) will resume this thread; it is
    /// runnable, just not yet scheduled.
    Runnable,
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Lock { lock } => write!(f, "blocked on lock {lock}"),
            BlockedOn::Op { desc } => write!(f, "op pending: {desc}"),
            BlockedOn::Runnable => write!(f, "runnable (event queued)"),
        }
    }
}

/// One live thread's state in a failure snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedThread {
    /// Platform thread id (spawn order).
    pub tid: usize,
    /// The `ThreadDesc` name (`r0t1`, `r2prog`, …).
    pub name: String,
    /// Cluster node the thread runs on.
    pub node: u32,
    /// What it is blocked on.
    pub on: BlockedOn,
}

impl fmt::Display for BlockedThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread {} `{}` (node {}) — {}",
            self.tid, self.name, self.node, self.on
        )
    }
}

/// One non-idle lock's state in a deadlock snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDiag {
    /// Lock index (`LockId.0`).
    pub lock: usize,
    /// Thread with a grant in flight, if any.
    pub pending: Option<usize>,
    /// Threads parked in the waiter queue.
    pub waiters: Vec<usize>,
    /// Queue depth.
    pub queued: usize,
}

/// Typed failure of a virtual-platform run ([`crate::Platform::try_run`]).
///
/// Both variants carry enough state to act on without re-running: every
/// live thread's name, placement, and blocked-on target, plus the
/// mailboxes still holding undelivered packets. The legacy
/// [`crate::Platform::run`] panics with the [`fmt::Display`] rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The fuel bound ran out before every thread finished.
    FuelExhausted {
        /// The configured bound (events).
        fuel: u64,
        /// Events executed (equals `fuel`).
        executed: u64,
        /// Virtual time of the first unexecuted event.
        now_ns: u64,
        /// Events still queued when execution stopped.
        queued_events: usize,
        /// Snapshot of every live thread.
        threads: Vec<BlockedThread>,
        /// `(endpoint, packets)` for mailboxes with undelivered packets.
        undelivered: Vec<(usize, usize)>,
    },
    /// The event queue drained while threads are still live.
    Deadlock {
        /// Snapshot of every live thread.
        threads: Vec<BlockedThread>,
        /// Every non-idle lock.
        locks: Vec<LockDiag>,
        /// `(endpoint, packets)` for mailboxes with undelivered packets.
        undelivered: Vec<(usize, usize)>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FuelExhausted {
                fuel,
                executed,
                now_ns,
                queued_events,
                threads,
                undelivered,
            } => {
                writeln!(
                    f,
                    "virtual platform fuel exhausted: {executed} events executed \
                     (fuel {fuel}), t={now_ns} ns, {queued_events} event(s) still queued"
                )?;
                for t in threads {
                    writeln!(f, "  {t}")?;
                }
                for (ep, n) in undelivered {
                    writeln!(f, "  mailbox {ep}: {n} undelivered packet(s)")?;
                }
                write!(
                    f,
                    "  (livelock or under-fueled run: raise the fuel bound via \
                     WorldBuilder::fuel / MTMPI_FUEL, or fix the spin)"
                )
            }
            SimError::Deadlock {
                threads,
                locks,
                undelivered,
            } => {
                writeln!(f, "virtual platform deadlock: no runnable events")?;
                for l in locks {
                    writeln!(
                        f,
                        "  lock {}: pending={:?} waiters={:?} ({} queued)",
                        l.lock, l.pending, l.waiters, l.queued
                    )?;
                }
                for t in threads {
                    writeln!(f, "  {t}")?;
                }
                for (ep, n) in undelivered {
                    writeln!(f, "  mailbox {ep}: {n} undelivered packet(s)")?;
                }
                write!(
                    f,
                    "  (every live thread is parked and no grant is scheduled)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_display_names_threads_and_mailboxes() {
        let e = SimError::FuelExhausted {
            fuel: 100,
            executed: 100,
            now_ns: 4200,
            queued_events: 3,
            threads: vec![
                BlockedThread {
                    tid: 0,
                    name: "r0t0".into(),
                    node: 0,
                    on: BlockedOn::Op {
                        desc: "NetPoll(0)".into(),
                    },
                },
                BlockedThread {
                    tid: 1,
                    name: "r1t0".into(),
                    node: 1,
                    on: BlockedOn::Runnable,
                },
            ],
            undelivered: vec![(1, 2)],
        };
        let s = e.to_string();
        assert!(s.contains("fuel exhausted"));
        assert!(s.contains("`r0t0`") && s.contains("`r1t0`"));
        assert!(s.contains("NetPoll(0)"));
        assert!(s.contains("mailbox 1: 2 undelivered"));
    }

    #[test]
    fn deadlock_display_names_locks_and_waiters() {
        let e = SimError::Deadlock {
            threads: vec![BlockedThread {
                tid: 3,
                name: "r0t3".into(),
                node: 0,
                on: BlockedOn::Lock { lock: 1 },
            }],
            locks: vec![LockDiag {
                lock: 1,
                pending: None,
                waiters: vec![3],
                queued: 1,
            }],
            undelivered: vec![],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("lock 1"));
        assert!(s.contains("`r0t3`") && s.contains("blocked on lock 1"));
    }
}
