//! Platform-aware synchronization helpers for application threads.

use crate::platform::Platform;
use std::sync::atomic::{AtomicU32, Ordering};

/// A sense-reversing spin barrier that stays live on both platforms: each
/// spin iteration yields through the platform (a scheduler round-trip in
/// virtual time, `thread::yield_now` natively) with exponential backoff,
/// so waiting costs virtual time without flooding the event queue.
///
/// Used by the hybrid kernels for their intra-rank thread synchronization
/// (the `OMP_Sync` component of the paper's Fig 11b breakdown).
#[derive(Debug)]
pub struct SpinBarrier {
    n: u32,
    count: AtomicU32,
    generation: AtomicU32,
}

impl SpinBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            count: AtomicU32::new(0),
            generation: AtomicU32::new(0),
        }
    }

    /// Wait until all `n` participants arrive. Returns `true` on exactly
    /// one participant per round (the last to arrive), like
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self, platform: &dyn Platform) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            platform.yield_now();
            return true;
        }
        let mut step_ns = 50u64;
        while self.generation.load(Ordering::Acquire) == gen {
            platform.compute(step_ns);
            platform.yield_now();
            step_ns = (step_ns * 2).min(50_000);
        }
        false
    }

    /// Number of participants.
    pub fn participants(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{LockModelParams, ThreadDesc};
    use crate::virt::VirtualPlatform;
    use mtmpi_net::NetModel;
    use mtmpi_topology::presets::nehalem_cluster_scaled;
    use mtmpi_topology::CoreId;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn barrier_rounds_in_virtual_time() {
        let p = Arc::new(VirtualPlatform::new(
            nehalem_cluster_scaled(1),
            NetModel::qdr(),
            LockModelParams::default(),
            3,
        ));
        let bar = Arc::new(SpinBarrier::new(4));
        let sum = Arc::new(AtomicU64::new(0));
        let leader_count = Arc::new(AtomicU64::new(0));
        for i in 0..4u32 {
            let (p2, bar, sum, leaders) =
                (p.clone(), bar.clone(), sum.clone(), leader_count.clone());
            p.spawn(
                ThreadDesc {
                    name: format!("t{i}"),
                    node: 0,
                    core: CoreId(i),
                },
                Box::new(move || {
                    for round in 0..5u64 {
                        // Unequal work before the barrier.
                        p2.compute(u64::from(i) * 1_000 + 100);
                        // All adds of round k must land before anyone
                        // proceeds into round k+1.
                        sum.fetch_add(1, Ordering::Relaxed);
                        if bar.wait(p2.as_ref() as &dyn crate::platform::Platform) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                            assert_eq!(sum.load(Ordering::Relaxed), (round + 1) * 4);
                        }
                        if bar.wait(p2.as_ref() as &dyn crate::platform::Platform) {
                            // second barrier guards the assert window
                        }
                    }
                }),
            );
        }
        p.run();
        assert_eq!(sum.load(Ordering::Relaxed), 20);
        assert_eq!(
            leader_count.load(Ordering::Relaxed),
            5,
            "one leader per round"
        );
    }

    #[test]
    fn single_participant_is_trivial() {
        let p = Arc::new(VirtualPlatform::new(
            nehalem_cluster_scaled(1),
            NetModel::qdr(),
            LockModelParams::default(),
            4,
        ));
        let bar = Arc::new(SpinBarrier::new(1));
        let b2 = bar.clone();
        let p2 = p.clone();
        p.spawn(
            ThreadDesc {
                name: "solo".into(),
                node: 0,
                core: CoreId(0),
            },
            Box::new(move || {
                assert!(b2.wait(p2.as_ref() as &dyn crate::platform::Platform));
            }),
        );
        p.run();
        assert_eq!(bar.participants(), 1);
    }
}
