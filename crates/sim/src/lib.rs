//! Execution platforms.
//!
//! The MPI-subset runtime in `mtmpi-runtime` is written against the
//! [`Platform`] trait, which abstracts *time*, *threads*, *critical
//! sections*, and the *network mailbox*. Two implementations:
//!
//! * [`VirtualPlatform`] — a deterministic discrete-event executor.
//!   Worker closures run on cooperative OS threads, exactly one at a time,
//!   scheduled in virtual-time order. Critical sections are *arbitration
//!   models* rather than real locks: the biased NPTL-mutex model (user
//!   space CAS race won by cache proximity + futex sleep/wake), the FIFO
//!   ticket model, and the two-level priority model. This is how the
//!   paper's NUMA phenomena are reproduced bit-for-bit on any host —
//!   including the single-core container this project targets.
//! * [`NativePlatform`] — real `std::thread`s, real locks from
//!   `mtmpi-locks`, wall-clock time. The same runtime and application code
//!   runs unmodified; used by examples and cross-validation tests.
//!
//! Worker code obtains the platform through an `Arc<dyn Platform>` and
//! calls [`Platform::compute`] to account for local work,
//! [`Platform::lock_acquire`]/[`Platform::lock_release`] around shared
//! state, and [`Platform::net_send`]/[`Platform::net_poll`] for
//! communication. On the virtual platform, `compute` merely advances a
//! thread-local clock — threads only synchronize with the scheduler at
//! lock and network operations, which keeps simulation overhead
//! proportional to synchronization, not to work.

pub mod errors;
pub mod native;
pub mod platform;
pub mod sync;
pub mod virt;

pub use errors::{BlockedOn, BlockedThread, LockDiag, SimError};
pub use native::NativePlatform;
pub use platform::{
    LockId, LockKind, LockModelParams, Payload, Platform, PlatformReport, ThreadDesc,
};
pub use sync::SpinBarrier;
pub use virt::arena::Arena;
pub use virt::calendar::{CalendarQueue, Keyed};
pub use virt::{EventCore, RunHandle, StepOutcome, VirtualPlatform};
