//! Virtual-time critical-section arbitration models.
//!
//! Each [`VLock`] models one critical section of one MPI process. The
//! scheduler drives it with `acquire`/`release`/`try_finalize` calls at
//! virtual times; the model decides **who gets the lock next and when**,
//! which is precisely the arbitration dimension the paper studies.
//!
//! ## The mutex model (NPTL, §2.2 of the paper)
//!
//! A waiter first *spins* in user space for a short window, then goes to
//! *sleep* (futex). On release:
//!
//! * every still-spinning waiter observes the freed cache line after the
//!   hand-off latency from the releaser's core to its own (plus jitter) —
//!   cache-close threads observe first;
//! * the longest-sleeping waiter is woken, but needs `wake_ns` (µs-scale)
//!   to get back to user space;
//! * the earliest observer wins the CAS. Crucially, the hand-off stays
//!   **preemptible** until it completes: a thread that *requests* the lock
//!   in that window (typically the previous owner coming back — its core
//!   already caches the line) can steal it. A woken sleeper that loses
//!   re-spins briefly and sleeps again ("the thread that wakes up again
//!   competes to acquire the lock and the same process repeats").
//!
//! Monopolization and NUMA bias are *emergent* here, exactly as on real
//! hardware: nothing in the model names a preferred thread.
//!
//! ## The ticket model (§5.1)
//!
//! Strict FIFO; the hand-off to the head waiter costs the cache-line
//! transfer latency between the releaser's and the winner's cores — which
//! is why the ticket lock pays more inter-socket traffic than a
//! monopolizing mutex at low concurrency (Fig 5b, scatter, 2 threads).
//!
//! ## The priority model (§5.2)
//!
//! Two FIFO classes; `Main` beats `Progress`. This is the idealized
//! behaviour of the three-ticket-lock construction of Fig 7 (the real
//! lock lets an already-queued low-priority thread slip in at a burst
//! boundary; the idealization is noted in DESIGN.md).
//!
//! ## The cohort model (§7 extension)
//!
//! FIFO, but prefers waiters on the releaser's socket for up to `budget`
//! consecutive hand-overs.

use crate::platform::{LockKind, LockModelParams};
use mtmpi_locks::PathClass;
use mtmpi_metrics::{AcquisitionRecord, CsTrace};
use mtmpi_topology::{CoreId, HandoffLatencies, NodeTopology, SocketId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A thread waiting for the lock.
#[derive(Debug, Clone)]
struct Waiter {
    tid: usize,
    core: CoreId,
    socket: SocketId,
    class: PathClass,
    /// When the thread started waiting (spin window is measured from
    /// here; re-queued mutex losers get this refreshed).
    enq_ns: u64,
    /// When the thread *first* started waiting (for wait-time stats).
    first_enq_ns: u64,
}

#[derive(Debug)]
enum State {
    /// Nobody holds or is being handed the lock.
    Free,
    /// `tid` holds the lock.
    Held { tid: usize },
    /// `winner` will own the lock at time `at` unless preempted.
    HandOff { winner: Waiter, at: u64 },
}

/// Result of an acquire call.
#[derive(Debug)]
pub(crate) enum AcquireOutcome {
    /// The lock was free; the caller owns it from time `at`.
    Granted { at: u64 },
    /// The caller is queued; it will be resumed by a later grant.
    Queued,
    /// Mutex steal: the caller preempted a pending hand-off and will own
    /// the lock at `at`; the scheduler must schedule `Grant(gen)` at `at`.
    StealPending { at: u64, gen: u64 },
}

/// Result of a release call.
#[derive(Debug)]
pub(crate) enum ReleaseOutcome {
    /// No waiters; the lock is free.
    Idle,
    /// A hand-off is pending; schedule `Grant(gen)` at `at`.
    Scheduled { at: u64, gen: u64 },
}

/// Result of finalizing a scheduled grant.
#[derive(Debug)]
pub(crate) enum GrantOutcome {
    /// The hand-off was preempted (stale generation); ignore.
    Stale,
    /// `tid` owns the lock from `at`; resume it.
    Granted { tid: usize, at: u64 },
}

/// One modelled critical section.
#[derive(Debug)]
pub(crate) struct VLock {
    kind: LockKind,
    params: LockModelParams,
    topo: NodeTopology,
    handoff: HandoffLatencies,
    state: State,
    waiters: VecDeque<Waiter>,
    trace: CsTrace,
    gen: u64,
    /// Core/socket of the last thread to hold the lock (the cache line's
    /// home until someone else takes it).
    last_owner: Option<(CoreId, SocketId)>,
    /// Thread id of the last owner (for the working-set migration cost).
    last_owner_tid: Option<usize>,
    cohort_passes: u32,
    prio_burst: u32,
    /// Threads flagged by the runtime as "has useful work now"
    /// (selective wake-up, §9 future work).
    boosted: std::collections::HashSet<usize>,
    rng: SmallRng,
    /// Count of acquisitions (cheap accessor without trace scan).
    acquisitions: u64,
}

impl VLock {
    pub(crate) fn new(
        kind: LockKind,
        params: LockModelParams,
        topo: NodeTopology,
        handoff: HandoffLatencies,
        seed: u64,
    ) -> Self {
        Self {
            kind,
            params,
            topo,
            handoff,
            state: State::Free,
            waiters: VecDeque::new(),
            trace: CsTrace::new(),
            gen: 0,
            last_owner: None,
            last_owner_tid: None,
            cohort_passes: 0,
            prio_burst: 0,
            boosted: std::collections::HashSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            acquisitions: 0,
        }
    }

    /// Latency for `core` to observe/fetch the lock line last touched by
    /// `last_owner` (or the uncontended cost if the line is unowned).
    fn fetch_latency(&self, core: CoreId) -> u64 {
        match self.last_owner {
            Some((lo, _)) => self
                .params
                .uncontended_ns
                .max(self.handoff.between(&self.topo, lo, core)),
            None => self.params.uncontended_ns,
        }
    }

    /// Working-set migration penalty charged when ownership changes
    /// threads: the new owner's first touches of the runtime's shared
    /// structures miss in its private caches.
    fn migration_cost(&self, tid: usize, socket: SocketId) -> u64 {
        match (self.last_owner_tid, self.last_owner) {
            (Some(prev_tid), Some((_, prev_socket))) if prev_tid != tid => {
                if prev_socket == socket {
                    self.params.migrate_same_socket_ns
                } else {
                    self.params.migrate_cross_socket_ns
                }
            }
            _ => 0,
        }
    }

    fn jitter(&mut self) -> u64 {
        if self.params.jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.params.jitter_ns)
        }
    }

    fn wake_jitter(&mut self) -> u64 {
        if self.params.wake_jitter_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.params.wake_jitter_ns)
        }
    }

    fn record_grant(&mut self, w: &Waiter, at: u64) {
        self.acquisitions += 1;
        if self.trace.len() >= self.params.trace_cap {
            return;
        }
        let mut per_socket = vec![0u32; self.topo.sockets as usize];
        for q in &self.waiters {
            per_socket[q.socket.0 as usize] += 1;
        }
        self.trace.push(AcquisitionRecord {
            owner: w.tid as u32,
            core: w.core,
            socket: w.socket,
            waiting: self.waiters.len() as u32,
            waiting_per_socket: per_socket,
            t_ns: at,
            wait_ns: at.saturating_sub(w.first_enq_ns),
        });
    }

    /// Flag `tid` as likely to do useful work on its next acquisition.
    pub(crate) fn boost(&mut self, tid: usize) {
        if matches!(self.kind, LockKind::Selective) {
            self.boosted.insert(tid);
        }
    }

    /// A thread requests the lock at time `t`.
    pub(crate) fn acquire(
        &mut self,
        t: u64,
        tid: usize,
        core: CoreId,
        socket: SocketId,
        class: PathClass,
    ) -> AcquireOutcome {
        let me = Waiter {
            tid,
            core,
            socket,
            class,
            enq_ns: t,
            first_enq_ns: t,
        };
        match &self.state {
            State::Free => {
                let at = t + self.fetch_latency(core) + self.migration_cost(tid, socket);
                self.record_grant(&me, at);
                self.state = State::Held { tid };
                self.last_owner = Some((core, socket));
                self.last_owner_tid = Some(tid);
                AcquireOutcome::Granted { at }
            }
            State::Held { .. } => {
                self.waiters.push_back(me);
                AcquireOutcome::Queued
            }
            State::HandOff { winner, at } => {
                let pending_at = *at;
                let loser = winner.clone();
                if matches!(self.kind, LockKind::Mutex | LockKind::Tas | LockKind::Ttas) {
                    // CAS race: the newcomer observes the free line after
                    // the fetch latency from the *releaser's* core, plus
                    // the lock-call turnaround overhead.
                    let t_obs = t
                        + self.params.steal_overhead_ns
                        + self.fetch_latency(core)
                        + self.jitter();
                    if t_obs < pending_at {
                        // Steal: the pending winner goes back to waiting
                        // (it notices the failed CAS around the time it
                        // would have acquired).
                        let mut loser = loser;
                        loser.enq_ns = pending_at;
                        self.waiters.push_back(loser);
                        self.state = State::HandOff {
                            winner: me,
                            at: t_obs,
                        };
                        self.gen += 1;
                        return AcquireOutcome::StealPending {
                            at: t_obs,
                            gen: self.gen,
                        };
                    }
                }
                self.waiters.push_back(me);
                AcquireOutcome::Queued
            }
        }
    }

    /// The holder releases at time `t` from `core`.
    pub(crate) fn release(
        &mut self,
        t: u64,
        tid: usize,
        core: CoreId,
        socket: SocketId,
    ) -> ReleaseOutcome {
        match &self.state {
            State::Held { tid: owner } if *owner == tid => {}
            other => panic!("release by non-owner thread {tid}: state {other:?}"),
        }
        self.last_owner = Some((core, socket));
        if self.waiters.is_empty() {
            self.state = State::Free;
            return ReleaseOutcome::Idle;
        }
        let (idx, at) = self.select_winner(t, core, socket);
        let winner = self.waiters.remove(idx).expect("selected index valid");
        self.state = State::HandOff { winner, at };
        self.gen += 1;
        ReleaseOutcome::Scheduled { at, gen: self.gen }
    }

    /// Choose the next owner among `self.waiters`; returns (index, time).
    fn select_winner(&mut self, t: u64, rel_core: CoreId, rel_socket: SocketId) -> (usize, u64) {
        match self.kind {
            LockKind::Ticket | LockKind::Mcs | LockKind::Clh => {
                let w = &self.waiters[0];
                let at = t + self.handoff.between(&self.topo, rel_core, w.core);
                (0, at)
            }
            LockKind::Selective => {
                // FIFO, except boosted waiters (threads whose requests
                // just completed) jump the queue.
                let idx = self
                    .waiters
                    .iter()
                    .position(|w| self.boosted.contains(&w.tid))
                    .unwrap_or(0);
                let winner_tid = self.waiters[idx].tid;
                self.boosted.remove(&winner_tid);
                let at = t + self
                    .handoff
                    .between(&self.topo, rel_core, self.waiters[idx].core);
                (idx, at)
            }
            LockKind::Priority => {
                // Main-path waiters are served first, but a burst of
                // consecutive main grants is bounded: at the boundary the
                // oldest progress-path waiter (the one holding a ticket_B
                // slot in the real lock) gets through.
                let main = self.waiters.iter().position(|w| w.class == PathClass::Main);
                let progress = self
                    .waiters
                    .iter()
                    .position(|w| w.class == PathClass::Progress);
                let idx = match (main, progress) {
                    (Some(m), Some(p)) => {
                        if self.prio_burst < self.params.priority_burst {
                            self.prio_burst += 1;
                            m
                        } else {
                            self.prio_burst = 0;
                            p
                        }
                    }
                    // No progress waiter is being passed over: this is
                    // not a "burst" in the starvation sense.
                    (Some(m), None) => m,
                    (None, Some(p)) => {
                        self.prio_burst = 0;
                        p
                    }
                    (None, None) => unreachable!("release with waiters"),
                };
                let at = t + self
                    .handoff
                    .between(&self.topo, rel_core, self.waiters[idx].core);
                (idx, at)
            }
            LockKind::Cohort { budget } => {
                let local = self
                    .waiters
                    .iter()
                    .position(|w| w.socket == rel_socket)
                    .filter(|_| self.cohort_passes < budget);
                let idx = match local {
                    Some(i) => {
                        self.cohort_passes += 1;
                        i
                    }
                    None => {
                        self.cohort_passes = 0;
                        0
                    }
                };
                let at = t + self
                    .handoff
                    .between(&self.topo, rel_core, self.waiters[idx].core);
                (idx, at)
            }
            LockKind::Mutex => self.select_mutex_winner(t, rel_core),
            LockKind::Tas | LockKind::Ttas => {
                // Pure CAS race among all (busy-waiting) waiters.
                let mut best = (0usize, u64::MAX);
                let n = self.waiters.len();
                for i in 0..n {
                    let core = self.waiters[i].core;
                    let t_obs =
                        t + self.handoff.between(&self.topo, rel_core, core) + self.jitter();
                    if t_obs < best.1 {
                        best = (i, t_obs);
                    }
                }
                best
            }
        }
    }

    fn select_mutex_winner(&mut self, t: u64, rel_core: CoreId) -> (usize, u64) {
        let spin_window = self.params.spin_window_ns;
        // FUTEX_WAKE side effect: every unlock with sleepers wakes the
        // head of the futex queue (the longest-asleep waiter), which will
        // arrive back in user space `wake_ns` later. Waking is *not*
        // selection: the woken thread must still win the CAS race, and
        // across a monopolization burst woken challengers accumulate —
        // which is what bounds burst length on real NPTL.
        let wake_at = t + self.params.wake_ns + self.wake_jitter();
        if let Some((i, _)) = self
            .waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| t >= w.enq_ns + spin_window) // sleeping now
            .min_by_key(|(_, w)| w.enq_ns)
        {
            self.waiters[i].enq_ns = wake_at; // in transit until then
        }
        // CAS race among user-space waiters: spinning ones observe the
        // release after the hand-off latency; in-transit ones (woken
        // sleepers) CAS on arrival.
        let mut best: Option<(usize, u64)> = None;
        let n = self.waiters.len();
        for i in 0..n {
            let (enq, core) = (self.waiters[i].enq_ns, self.waiters[i].core);
            let t_obs = if t < enq {
                // In transit: CASes on arrival; the line needs fetching.
                enq + self.fetch_latency(core) + self.jitter()
            } else if t < enq + spin_window {
                // Spinning now: observes the release after the hand-off
                // latency from the releaser's core.
                t + self.handoff.between(&self.topo, rel_core, core) + self.jitter()
            } else {
                continue; // asleep in the kernel
            };
            if best.is_none_or(|(_, b)| t_obs < b) {
                best = Some((i, t_obs));
            }
        }
        best.expect("release with waiters must have a live candidate (one was just woken)")
    }

    /// Finalize a scheduled grant if still current.
    pub(crate) fn try_finalize(&mut self, gen: u64) -> GrantOutcome {
        if gen != self.gen {
            return GrantOutcome::Stale;
        }
        match std::mem::replace(&mut self.state, State::Free) {
            State::HandOff { winner, at } => {
                let at = at + self.migration_cost(winner.tid, winner.socket);
                self.record_grant(&winner, at);
                self.state = State::Held { tid: winner.tid };
                self.last_owner = Some((winner.core, winner.socket));
                self.last_owner_tid = Some(winner.tid);
                GrantOutcome::Granted {
                    tid: winner.tid,
                    at,
                }
            }
            other => {
                self.state = other;
                GrantOutcome::Stale
            }
        }
    }

    /// Number of threads currently queued.
    pub(crate) fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// Whether the lock is idle (free, no waiters, no hand-off).
    pub(crate) fn is_idle(&self) -> bool {
        matches!(self.state, State::Free) && self.waiters.is_empty()
    }

    /// Names of waiting thread ids (deadlock diagnostics).
    pub(crate) fn waiter_tids(&self) -> Vec<usize> {
        self.waiters.iter().map(|w| w.tid).collect()
    }

    /// Pending hand-off winner, if any (deadlock diagnostics).
    pub(crate) fn pending_tid(&self) -> Option<usize> {
        match &self.state {
            State::HandOff { winner, .. } => Some(winner.tid),
            _ => None,
        }
    }

    /// Extract the trace.
    pub(crate) fn into_trace(self) -> CsTrace {
        self.trace
    }

    /// Total acquisitions.
    #[allow(dead_code)]
    pub(crate) fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmpi_topology::presets::nehalem_node;

    fn lock(kind: LockKind) -> VLock {
        VLock::new(
            kind,
            LockModelParams::default(),
            nehalem_node(),
            HandoffLatencies::NEHALEM,
            42,
        )
    }

    fn place(tid: usize) -> (CoreId, SocketId) {
        (CoreId(tid as u32), SocketId(tid as u32 / 4))
    }

    #[test]
    fn free_acquire_grants_immediately() {
        let mut l = lock(LockKind::Ticket);
        let (c, s) = place(0);
        match l.acquire(100, 0, c, s, PathClass::Main) {
            AcquireOutcome::Granted { at } => assert_eq!(at, 100 + 15),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn ticket_is_fifo() {
        let mut l = lock(LockKind::Ticket);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        for tid in 1..4 {
            let (c, s) = place(tid);
            assert!(matches!(
                l.acquire(10, tid, c, s, PathClass::Main),
                AcquireOutcome::Queued
            ));
        }
        // Release: head (tid 1) must win despite tid 3 being... also queued.
        match l.release(1000, 0, c0, s0) {
            ReleaseOutcome::Scheduled { at, gen } => {
                // tid 1 is same socket as 0: hand-off 25ns.
                assert_eq!(at, 1025);
                match l.try_finalize(gen) {
                    GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 1),
                    o => panic!("unexpected {o:?}"),
                }
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn priority_prefers_main_path() {
        let mut l = lock(LockKind::Priority);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        let (c1, s1) = place(1);
        let (c2, s2) = place(2);
        assert!(matches!(
            l.acquire(5, 1, c1, s1, PathClass::Progress),
            AcquireOutcome::Queued
        ));
        assert!(matches!(
            l.acquire(10, 2, c2, s2, PathClass::Main),
            AcquireOutcome::Queued
        ));
        match l.release(100, 0, c0, s0) {
            ReleaseOutcome::Scheduled { gen, .. } => match l.try_finalize(gen) {
                GrantOutcome::Granted { tid, .. } => {
                    assert_eq!(tid, 2, "main-path waiter must beat earlier progress waiter");
                }
                o => panic!("unexpected {o:?}"),
            },
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn mutex_steal_by_fast_returner() {
        let mut l = lock(LockKind::Mutex);
        let (c0, s0) = place(0);
        let (c7, s7) = place(7); // remote socket
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        // Remote thread queues at t=10 and will be asleep by t=310.
        assert!(matches!(
            l.acquire(10, 7, c7, s7, PathClass::Main),
            AcquireOutcome::Queued
        ));
        // Owner releases at t=10_000: waiter 7 is asleep, wake ~2500ns.
        let (at_sleepy, gen) = match l.release(10_000, 0, c0, s0) {
            ReleaseOutcome::Scheduled { at, gen } => (at, gen),
            o => panic!("unexpected {o:?}"),
        };
        assert!(
            at_sleepy >= 12_500,
            "sleeping waiter pays the wake latency, got {at_sleepy}"
        );
        // Previous owner comes back at t=10_100 — inside the wake window —
        // and steals (same-core fetch ≈ 15-35ns ≪ 2500ns).
        match l.acquire(10_100, 0, c0, s0, PathClass::Main) {
            AcquireOutcome::StealPending { at, gen: g2 } => {
                assert!(at < at_sleepy);
                assert!(g2 > gen);
                assert!(
                    matches!(l.try_finalize(gen), GrantOutcome::Stale),
                    "old grant stale"
                );
                match l.try_finalize(g2) {
                    GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 0, "monopolization"),
                    o => panic!("unexpected {o:?}"),
                }
            }
            o => panic!("expected steal, got {o:?}"),
        }
        // Thread 7 is back in the waiters queue, not lost.
        assert_eq!(l.waiter_tids(), vec![7]);
    }

    #[test]
    fn ticket_never_stolen() {
        let mut l = lock(LockKind::Ticket);
        let (c0, s0) = place(0);
        let (c4, s4) = place(4);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        assert!(matches!(
            l.acquire(10, 4, c4, s4, PathClass::Main),
            AcquireOutcome::Queued
        ));
        let gen = match l.release(1_000, 0, c0, s0) {
            ReleaseOutcome::Scheduled { gen, .. } => gen,
            o => panic!("unexpected {o:?}"),
        };
        // Old owner tries to barge during the hand-off; it must queue.
        assert!(matches!(
            l.acquire(1_001, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Queued
        ));
        match l.try_finalize(gen) {
            GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 4, "FIFO respected"),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn mutex_prefers_spinning_local_over_remote() {
        let mut l = lock(LockKind::Mutex);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        // Two fresh (spinning) waiters: core 1 (same socket), core 4
        // (remote). Release within their spin windows.
        let (c1, s1) = place(1);
        let (c4, s4) = place(4);
        assert!(matches!(
            l.acquire(100, 1, c1, s1, PathClass::Main),
            AcquireOutcome::Queued
        ));
        assert!(matches!(
            l.acquire(100, 4, c4, s4, PathClass::Main),
            AcquireOutcome::Queued
        ));
        // Run many trials statistically via fresh locks (jitter matters).
        // Same-socket observation 25+U(0,20) vs remote 120+U(0,20): local
        // must always win here since 45 < 120.
        match l.release(200, 0, c0, s0) {
            ReleaseOutcome::Scheduled { gen, .. } => match l.try_finalize(gen) {
                GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 1),
                o => panic!("unexpected {o:?}"),
            },
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn idle_release_and_reacquire() {
        let mut l = lock(LockKind::Mutex);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        assert!(matches!(l.release(100, 0, c0, s0), ReleaseOutcome::Idle));
        assert!(l.is_idle());
        // Re-acquire by the same core is cheap (line still local).
        match l.acquire(200, 0, c0, s0, PathClass::Main) {
            AcquireOutcome::Granted { at } => assert_eq!(at, 215),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn release_by_non_owner_panics() {
        let mut l = lock(LockKind::Ticket);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        let (c1, s1) = place(1);
        let _ = l.release(10, 1, c1, s1);
    }

    #[test]
    fn selective_boost_jumps_queue() {
        let mut l = lock(LockKind::Selective);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        for tid in 1..4 {
            let (c, s) = place(tid);
            assert!(matches!(
                l.acquire(10, tid, c, s, PathClass::Main),
                AcquireOutcome::Queued
            ));
        }
        // Boost thread 3 (its request "just completed"): it must be
        // served before the FIFO-earlier threads 1 and 2.
        l.boost(3);
        match l.release(1_000, 0, c0, s0) {
            ReleaseOutcome::Scheduled { gen, .. } => match l.try_finalize(gen) {
                GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 3, "boosted thread wins"),
                o => panic!("unexpected {o:?}"),
            },
            o => panic!("unexpected {o:?}"),
        }
        // Without further boosts it degrades to plain FIFO.
        let (c3, s3) = place(3);
        match l.release(2_000, 3, c3, s3) {
            ReleaseOutcome::Scheduled { gen, .. } => match l.try_finalize(gen) {
                GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 1, "FIFO after boost"),
                o => panic!("unexpected {o:?}"),
            },
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn boost_is_ignored_by_other_kinds() {
        let mut l = lock(LockKind::Ticket);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        for tid in 1..3 {
            let (c, s) = place(tid);
            assert!(matches!(
                l.acquire(10, tid, c, s, PathClass::Main),
                AcquireOutcome::Queued
            ));
        }
        l.boost(2); // no-op for ticket
        match l.release(1_000, 0, c0, s0) {
            ReleaseOutcome::Scheduled { gen, .. } => match l.try_finalize(gen) {
                GrantOutcome::Granted { tid, .. } => assert_eq!(tid, 1, "ticket stays FIFO"),
                o => panic!("unexpected {o:?}"),
            },
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn trace_records_waiting_counts() {
        let mut l = lock(LockKind::Ticket);
        let (c0, s0) = place(0);
        assert!(matches!(
            l.acquire(0, 0, c0, s0, PathClass::Main),
            AcquireOutcome::Granted { .. }
        ));
        for tid in 1..4 {
            let (c, s) = place(tid);
            assert!(matches!(
                l.acquire(1, tid, c, s, PathClass::Main),
                AcquireOutcome::Queued
            ));
        }
        if let ReleaseOutcome::Scheduled { gen, .. } = l.release(100, 0, c0, s0) {
            let _ = l.try_finalize(gen);
        }
        let trace = l.into_trace();
        assert_eq!(trace.len(), 2);
        // Second acquisition saw 2 remaining waiters.
        assert_eq!(trace.records()[1].waiting, 2);
    }
}
