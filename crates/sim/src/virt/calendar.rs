//! Calendar-queue event scheduler: the bucketed replacement for the
//! global `BinaryHeap<Ev>`.
//!
//! Layout (DESIGN.md §16): virtual time is partitioned into epochs of
//! `1 << shift` ns. A power-of-two ring of buckets holds the next
//! `nslots` epochs; pushes into a future in-window epoch are **O(1)
//! appends** into that epoch's bucket (a plain `Vec` whose storage is
//! recycled across rotations — zero steady-state allocation). When the
//! window rotates into an epoch, its bucket is sorted **once**
//! (descending, so pops are O(1) tail pops) into the `run`; events
//! pushed into the current epoch while it drains go to a small `spill`
//! heap and are merged on the fly, so everything still pops in exact
//! `(t, seq)` order. Events beyond the ring window land in *unsorted*
//! per-window overflow buckets (a second calendar level: one bucket per
//! future ring revolution) and are promoted wholesale into the ring
//! slots when the window rotates up to them — overflow never compares
//! items; ordering is recovered by the slot sort that runs anyway.
//!
//! Ordering contract: pops are **byte-identical** to a global
//! `BinaryHeap` ordered by `(t, seq)` — the property test in
//! `crates/sim/tests/calendar_prop.rs` pins this over randomized
//! streams, same-bucket ties, and far-future overflow pushes, and the
//! scheduler's `sched_trace_hash` equality across the two cores pins it
//! end to end. The win over a global heap: pushes are O(1) instead of
//! O(log n), pop cost scales with the *active-epoch population* instead
//! of the total pending population, and same-timestamp runs batch out
//! of the sorted run ([`CalendarQueue::pop_batch`]) without re-sifting
//! the world per event.

use std::collections::BinaryHeap;

/// An item schedulable by `(time, seq)`. Both together must be unique
/// per item; `seq` breaks same-time ties (issue order).
pub trait Keyed {
    /// Virtual due time, ns.
    fn time(&self) -> u64;
    /// Tie-breaking sequence number.
    fn seq(&self) -> u64;
}

/// Min-order wrapper: `BinaryHeap` is a max-heap, so compare reversed.
struct Entry<T: Keyed>(T);

impl<T: Keyed> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time(), self.0.seq()) == (other.0.time(), other.0.seq())
    }
}
impl<T: Keyed> Eq for Entry<T> {}
impl<T: Keyed> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.time(), other.0.seq()).cmp(&(self.0.time(), self.0.seq()))
    }
}
impl<T: Keyed> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bucketed event queue with exact `(t, seq)` pop order. See module docs.
pub struct CalendarQueue<T: Keyed> {
    /// Epoch width: `1 << shift` ns per bucket.
    shift: u32,
    /// Ring of future-epoch buckets; `slots[e & mask]` holds epoch `e`.
    slots: Box<[Vec<T>]>,
    /// `slots.len() - 1` (power of two).
    mask: u64,
    /// Epoch currently draining (`t >> shift` of the active window).
    epoch: u64,
    /// The current epoch's events, sorted descending by `(t, seq)` —
    /// the minimum pops off the tail in O(1).
    run: Vec<T>,
    /// Current-epoch events pushed *after* the run was sorted; merged
    /// against the run tail on every pop.
    spill: BinaryHeap<Entry<T>>,
    /// Epoch → window-index shift: window `w` spans epochs
    /// `[w << wshift, (w + 1) << wshift)`, one full ring revolution.
    wshift: u32,
    /// Events beyond the ring window, bucketed *unsorted* per window.
    /// The whole bucket is promoted into the ring slots when the window
    /// rotates up to it; no comparisons happen here.
    overflow: std::collections::BTreeMap<u64, Vec<T>>,
    /// Retired overflow-bucket storage, recycled so steady-state churn
    /// through overflow allocates nothing.
    spare: Vec<Vec<T>>,
    /// Items parked in ring slots (excludes `run`, `spill`, `overflow`).
    in_ring: usize,
    /// Total items.
    len: usize,
}

impl<T: Keyed> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Keyed> CalendarQueue<T> {
    /// Default geometry: 512 ns epochs × 1024 buckets (a 524 µs window —
    /// wide enough that lock wakes and in-flight packets stay in-ring;
    /// only far-future events touch the overflow heap).
    pub fn new() -> Self {
        Self::with_geometry(9, 1024)
    }

    /// Custom geometry: `1 << shift` ns epochs, `nslots` buckets
    /// (rounded up to a power of two).
    pub fn with_geometry(shift: u32, nslots: usize) -> Self {
        let nslots = nslots.next_power_of_two().max(2);
        Self {
            shift,
            slots: (0..nslots).map(|_| Vec::new()).collect(),
            mask: (nslots - 1) as u64,
            epoch: 0,
            run: Vec::new(),
            spill: BinaryHeap::new(),
            wshift: nslots.trailing_zeros(),
            overflow: std::collections::BTreeMap::new(),
            spare: Vec::new(),
            in_ring: 0,
            len: 0,
        }
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `item`. O(1) for in-window epochs; O(log windows) beyond
    /// (a b-tree probe over the handful of pending windows, then an
    /// O(1) append into that window's unsorted bucket).
    pub fn push(&mut self, item: T) {
        let e = item.time() >> self.shift;
        self.len += 1;
        if e <= self.epoch {
            // Current (or, defensively, past) epoch: ordered insertion
            // into the spill heap, merged with the run on pop.
            self.spill.push(Entry(item));
        } else if e - self.epoch <= self.mask + 1 {
            // In-window future epoch: O(1) append. `e - epoch` may equal
            // nslots: the current epoch's own slot is already drained,
            // and no two in-window epochs share a residue.
            self.slots[(e & self.mask) as usize].push(item);
            self.in_ring += 1;
        } else {
            // Beyond the window ⇒ the item's window has not been
            // promoted yet (promotion at epoch `w·nslots − 1` puts the
            // whole window inside the ring bound checked above).
            let spare = &mut self.spare;
            self.overflow
                .entry(e >> self.wshift)
                .or_insert_with(|| spare.pop().unwrap_or_default())
                .push(item);
        }
    }

    /// Pop the `(t, seq)`-minimum item.
    pub fn pop(&mut self) -> Option<T> {
        self.ensure_active();
        let from_spill = match (self.run.last(), self.spill.peek()) {
            (None, None) => return None,
            (Some(r), Some(s)) => (s.0.time(), s.0.seq()) < (r.time(), r.seq()),
            (None, Some(_)) => true,
            (Some(_), None) => false,
        };
        self.len -= 1;
        if from_spill {
            Some(self.spill.pop().expect("peeked").0)
        } else {
            self.run.pop()
        }
    }

    /// Key of the `(t, seq)`-minimum item without removing it. `&mut`
    /// because finding it may rotate the window forward.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        self.ensure_active();
        let r = self.run.last().map(|r| (r.time(), r.seq()));
        let s = self.spill.peek().map(|e| (e.0.time(), e.0.seq()));
        match (r, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Batch dequeue of one same-timestamp bucket: pop the minimum item
    /// and every further item sharing its `t`, in `(t, seq)` order,
    /// appending to `out`. Returns the number popped. Concatenating
    /// batches reproduces the exact single-pop sequence — any item
    /// pushed *while a batch is processed* has `t` ≥ the batch time and,
    /// at equal `t`, a larger `seq` than every batched item, so it
    /// correctly sorts after them.
    pub fn pop_batch(&mut self, out: &mut Vec<T>) -> usize {
        let Some(first) = self.pop() else { return 0 };
        let t = first.time();
        out.push(first);
        let mut n = 1;
        while self.peek_key().is_some_and(|(pt, _)| pt == t) {
            out.push(self.pop().expect("peeked"));
            n += 1;
        }
        n
    }

    /// Make the run/spill pair hold the earliest pending epoch (rotating
    /// the window and promoting overflow windows as needed). No-op when
    /// either is nonempty or the queue is empty.
    fn ensure_active(&mut self) {
        while self.run.is_empty() && self.spill.is_empty() {
            if self.in_ring == 0 {
                // Ring empty: jump to the first pending overflow
                // window's promotion point (each epoch is visited at
                // most once, so scanning empty buckets one by one would
                // be O(gap)). Any window skipped over has no bucket —
                // `w` is the b-tree minimum — so nothing is missed.
                let Some((&w, _)) = self.overflow.first_key_value() else {
                    return;
                };
                let promote_at = (w << self.wshift) - 1;
                debug_assert!(promote_at >= self.epoch, "overflow behind the window");
                self.epoch = promote_at;
                self.promote_window(w);
                continue;
            }
            // Ring nonempty: the next pending epoch is at most
            // `nslots` ahead. Step epoch by epoch — each bucket is
            // visited once per rotation, so the scan amortizes to O(1)
            // per event.
            self.epoch += 1;
            let idx = (self.epoch & self.mask) as usize;
            if !self.slots[idx].is_empty() {
                self.in_ring -= self.slots[idx].len();
                // Swap-free handover: move the bucket's items into the
                // (empty) run and sort once, descending, so every pop of
                // this epoch is an O(1) tail pop. append() empties the
                // bucket but keeps its capacity: after warm-up the
                // rotation recycles storage with zero allocation.
                let slot = &mut self.slots[idx];
                self.run.append(slot);
                self.run
                    .sort_unstable_by_key(|x| std::cmp::Reverse((x.time(), x.seq())));
            }
            // At the last epoch before window `w` (`epoch ≡ nslots − 1`,
            // so `epoch = w·nslots − 1`), promote `w`'s overflow bucket.
            // Strictly *after* draining this epoch's slot: the window's
            // last epoch, `epoch + nslots`, shares this epoch's ring
            // residue, and draining after promotion would hoist those
            // items into the run a full rotation early, where they would
            // both pop out of order and block the rotation.
            if self.epoch & self.mask == self.mask {
                self.promote_window((self.epoch >> self.wshift) + 1);
            }
        }
    }

    /// Move window `w`'s overflow bucket (if any) into the ring slots.
    /// Called exactly at epoch `w·nslots − 1`, so every item in the
    /// bucket — epochs `[w·nslots, (w+1)·nslots)` — is in-window, and no
    /// two of them share a slot residue: the bucket needs no order at
    /// all, each slot's sort at drain time restores `(t, seq)`.
    fn promote_window(&mut self, w: u64) {
        let Some(mut bucket) = self.overflow.remove(&w) else {
            return;
        };
        for it in bucket.drain(..) {
            let e = it.time() >> self.shift;
            debug_assert!(e > self.epoch && e - self.epoch <= self.mask + 1);
            self.slots[(e & self.mask) as usize].push(it);
            self.in_ring += 1;
        }
        self.spare.push(bucket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq)]
    struct E(u64, u64);
    impl Keyed for E {
        fn time(&self) -> u64 {
            self.0
        }
        fn seq(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn pops_in_key_order_across_buckets() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        for (t, s) in [(100, 0), (5, 1), (5, 0), (100_000, 2), (17, 3)] {
            q.push(E(t, s));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.0, e.1));
        }
        assert_eq!(got, vec![(5, 0), (5, 1), (17, 3), (100, 0), (100_000, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_into_draining_epoch_stays_ordered() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        q.push(E(16, 0)); // epoch 1
        q.push(E(31, 1)); // epoch 1
        assert_eq!(q.pop().unwrap(), E(16, 0));
        // Same epoch, between the remaining item: must pop before 31.
        q.push(E(20, 2));
        assert_eq!(q.pop().unwrap(), E(20, 2));
        assert_eq!(q.pop().unwrap(), E(31, 1));
    }

    #[test]
    fn overflow_inside_a_later_window_is_not_overtaken() {
        // Regression shape: an overflow item whose epoch enters the
        // window only after the ring advances must still pop before a
        // ring item scheduled beyond it.
        let mut q = CalendarQueue::with_geometry(0, 8); // 1 ns epochs, window 8
        q.push(E(600, 0)); // far future: overflow
        q.push(E(500, 1)); // also overflow
        q.push(E(3, 2)); // in-window
        assert_eq!(q.pop().unwrap(), E(3, 2));
        // Ring now empty; jump lands at 500's epoch and 600 re-enters
        // the overflow-vs-ring dance.
        q.push(E(505, 3)); // in-window after the jump? pushed pre-jump: overflow too
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e.0);
        }
        assert_eq!(got, vec![500, 505, 600]);
    }

    #[test]
    fn overflow_sharing_a_ring_residue_is_not_hoisted_early() {
        // Regression: two overflow items whose epochs differ by exactly
        // `nslots` share a ring residue. When the window steps into the
        // nearer epoch, the pull must not let the slot drain hoist the
        // farther item into `active` a rotation early — it would pop
        // before anything parked in between.
        let mut q = CalendarQueue::with_geometry(0, 8); // 1 ns epochs
        q.push(E(0, 0));
        q.push(E(5, 1)); // in-window: ring slot 5
        q.push(E(16, 2)); // overflow (epoch 16)
        q.push(E(24, 3)); // overflow (epoch 24 — same residue as 16)
        assert_eq!(q.pop().unwrap(), E(0, 0));
        assert_eq!(q.pop().unwrap(), E(5, 1));
        q.push(E(13, 4)); // window is now (5, 13]: stays in-ring
        assert_eq!(q.pop().unwrap(), E(13, 4));
        // Parked from epoch 13 so the ring is nonempty and epoch 16 is
        // reached by *stepping*, not the empty-ring jump. The buggy
        // pull-then-drain order at 16 hoisted 24 into `active` and
        // popped it before this item.
        q.push(E(20, 5));
        assert_eq!(q.pop().unwrap(), E(16, 2));
        assert_eq!(q.pop().unwrap(), E(20, 5));
        assert_eq!(q.pop().unwrap(), E(24, 3));
        assert!(q.is_empty());
    }

    #[test]
    fn window_promotion_does_not_hoist_its_last_epoch() {
        // A window's last epoch shares a ring residue with the epoch its
        // promotion runs at (`w·nslots − 1`). If promotion ran before
        // that epoch's slot drain, the freshly-promoted last-epoch items
        // would drain into the run a full rotation early.
        let mut q = CalendarQueue::with_geometry(0, 8); // 1 ns epochs
        q.push(E(8, 0)); // in-window: ring slot 0
        q.push(E(23, 1)); // overflow, window 2's *last* epoch
        q.push(E(18, 2)); // overflow, window 2
        assert_eq!(q.pop().unwrap(), E(8, 0));
        q.push(E(16, 3)); // keeps the ring nonempty across epoch 15,
                          // where window 2 is promoted by *stepping*
        assert_eq!(q.pop().unwrap(), E(16, 3));
        assert_eq!(q.pop().unwrap(), E(18, 2));
        assert_eq!(q.pop().unwrap(), E(23, 1));
        assert!(q.is_empty());
    }

    #[test]
    fn batch_pops_full_same_timestamp_run() {
        let mut q = CalendarQueue::with_geometry(6, 16);
        for s in 0..5 {
            q.push(E(640, s));
        }
        q.push(E(641, 5));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|e| e.0 == 640));
        assert!(out.windows(2).all(|w| w[0].1 < w[1].1), "seq order");
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out[0], E(641, 5));
        assert_eq!(q.pop_batch(&mut out), 0);
    }

    #[test]
    fn len_tracks_through_rotation_and_overflow() {
        let mut q = CalendarQueue::with_geometry(3, 4);
        for i in 0..100u64 {
            q.push(E(i * 37, i));
        }
        assert_eq!(q.len(), 100);
        for _ in 0..60 {
            q.pop().unwrap();
        }
        assert_eq!(q.len(), 40);
        for i in 100..140u64 {
            q.push(E(i * 37, i));
        }
        let mut last = (0, 0);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!((e.0, e.1) > last);
            last = (e.0, e.1);
            n += 1;
        }
        assert_eq!(n, 80);
    }
}
