//! The deterministic virtual-time platform.
//!
//! Worker closures run on real OS threads, but **exactly one runs at a
//! time**: each worker blocks until the scheduler resumes it, runs until
//! its next synchronization point (lock or network operation), and hands
//! control back. Local computation ([`Platform::compute`]) accumulates in
//! a thread-local offset without scheduler involvement, so simulation cost
//! scales with synchronization frequency, not with simulated work.
//!
//! Determinism: the scheduler processes events strictly in
//! `(virtual time, sequence)` order, worker interaction is fully
//! serialized, and all randomness (CAS-race jitter, per-thread RNG
//! streams) derives from the run's seed.

pub(crate) mod vlock;

use crate::platform::{
    LockId, LockKind, LockModelParams, Payload, Platform, PlatformReport, ThreadDesc,
};
use mtmpi_locks::{CsToken, PathClass};
use mtmpi_net::NetModel;
use mtmpi_topology::{ClusterTopology, CoreId, SocketId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::Mutex;
use vlock::{AcquireOutcome, GrantOutcome, ReleaseOutcome, VLock};

/// Operations a worker submits to the scheduler.
enum Op {
    /// Scheduler round-trip with no effect: lets other threads run up to
    /// this thread's current virtual time (used by `yield_now` so that
    /// busy-waits on shared memory stay live).
    Fence,
    LockBoost {
        lock: usize,
        tid: u64,
    },
    LockAcquire {
        lock: usize,
        class: PathClass,
    },
    LockRelease {
        lock: usize,
    },
    NetSend {
        src: usize,
        dst: usize,
        bytes: u64,
        extra_delay_ns: u64,
        payload: Payload,
    },
    NetPoll {
        endpoint: usize,
    },
    NetPending {
        endpoint: usize,
    },
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Fence => write!(f, "Fence"),
            Op::LockBoost { lock, tid } => write!(f, "LockBoost({lock}, t{tid})"),
            Op::LockAcquire { lock, class } => write!(f, "LockAcquire({lock}, {class:?})"),
            Op::LockRelease { lock } => write!(f, "LockRelease({lock})"),
            Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                ..
            } => {
                if *extra_delay_ns > 0 {
                    write!(f, "NetSend({src}->{dst}, {bytes}B, +{extra_delay_ns}ns)")
                } else {
                    write!(f, "NetSend({src}->{dst}, {bytes}B)")
                }
            }
            Op::NetPoll { endpoint } => write!(f, "NetPoll({endpoint})"),
            Op::NetPending { endpoint } => write!(f, "NetPending({endpoint})"),
        }
    }
}

/// Worker → scheduler messages.
enum Request {
    Op {
        tid: usize,
        at: u64,
        op: Op,
    },
    Done {
        tid: usize,
        at: u64,
    },
    /// The worker's closure panicked; the scheduler re-raises the panic
    /// so `run()` fails with the worker's message instead of hanging.
    Panicked {
        tid: usize,
        msg: String,
    },
}

/// Scheduler → worker resumptions.
enum Reply {
    Go { now: u64 },
    Packets { now: u64, pkts: Vec<Payload> },
    Flag { now: u64, v: bool },
}

impl Reply {
    fn now(&self) -> u64 {
        match self {
            Reply::Go { now } | Reply::Packets { now, .. } | Reply::Flag { now, .. } => *now,
        }
    }
}

/// Thread-local worker context installed while a worker closure runs.
struct WorkerCtx {
    tid: usize,
    base: Cell<u64>,
    offset: Cell<u64>,
    req_tx: mpsc::Sender<Request>,
    go_rx: mpsc::Receiver<Reply>,
    rng: RefCell<SmallRng>,
}

thread_local! {
    static CTX: RefCell<Option<Rc<WorkerCtx>>> = const { RefCell::new(None) };
}

impl WorkerCtx {
    fn now(&self) -> u64 {
        self.base.get() + self.offset.get()
    }

    fn sync(&self, op: Op) -> Reply {
        self.req_tx
            .send(Request::Op {
                tid: self.tid,
                at: self.now(),
                op,
            })
            .expect("scheduler alive");
        let reply = self.go_rx.recv().expect("scheduler alive");
        self.base.set(reply.now());
        self.offset.set(0);
        reply
    }
}

fn with_ctx<R>(f: impl FnOnce(&WorkerCtx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect(
            "virtual-platform operation outside a worker thread (did you call it before run()?)",
        );
        f(ctx)
    })
}

fn in_worker() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Order-sensitive FNV-1a 64 accumulator over scheduler decisions.
///
/// Every event popped from the heap (the dequeue order *is* the
/// scheduler's decision trace) folds its virtual time, kind, and payload
/// into the hash, and every lock grant folds the granted thread and
/// grant time. Two runs with identical seeds and workloads produce
/// byte-identical event sequences, hence equal hashes; any schedule
/// divergence — a different interleaving, a different grant winner, a
/// shifted arrival — changes it. Exposed per run as
/// [`PlatformReport::sched_trace_hash`] so replay identity can be
/// asserted without comparing full traces.
#[derive(Debug, Clone, Copy)]
struct SchedHash(u64);

impl SchedHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn mix(&mut self, word: u64) {
        // FNV-1a over the 8 little-endian bytes of `word`.
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn event(&mut self, ev: &Ev) {
        self.mix(ev.t);
        match ev.kind {
            EvKind::Start(tid) => {
                self.mix(1);
                self.mix(tid as u64);
            }
            EvKind::Exec(tid) => {
                self.mix(2);
                self.mix(tid as u64);
            }
            EvKind::Grant { lock, gen } => {
                self.mix(3);
                self.mix(lock as u64);
                self.mix(gen);
            }
        }
    }

    fn grant(&mut self, tid: usize, at: u64) {
        self.mix(4);
        self.mix(tid as u64);
        self.mix(at);
    }
}

/// Scheduler event.
#[derive(Debug, PartialEq, Eq)]
enum EvKind {
    Start(usize),
    Exec(usize),
    Grant { lock: usize, gen: u64 },
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    t: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for the max-heap: earliest (t, seq) first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A packet waiting in (or in flight to) a mailbox.
struct Arriving {
    at: u64,
    seq: u64,
    payload: Payload,
}

impl PartialEq for Arriving {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Arriving {}
impl Ord for Arriving {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl PartialOrd for Arriving {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct ThreadInfo {
    name: String,
    node: u32,
    core: CoreId,
    socket: SocketId,
}

/// Pre-run registration state.
struct Registration {
    lock_specs: Vec<LockKind>,
    endpoints: Vec<u32>, // node per endpoint
    threads: Vec<(ThreadDesc, Box<dyn FnOnce() + Send>)>,
}

/// The deterministic virtual-time platform. See module docs.
pub struct VirtualPlatform {
    cluster: ClusterTopology,
    net: NetModel,
    params: LockModelParams,
    seed: u64,
    reg: Mutex<Option<Registration>>,
}

impl VirtualPlatform {
    /// Create a platform for the given cluster and network model.
    pub fn new(
        cluster: ClusterTopology,
        net: NetModel,
        params: LockModelParams,
        seed: u64,
    ) -> Self {
        Self {
            cluster,
            net,
            params,
            seed,
            reg: Mutex::new(Some(Registration {
                lock_specs: Vec::new(),
                endpoints: Vec::new(),
                threads: Vec::new(),
            })),
        }
    }

    /// The cluster this platform models.
    pub fn cluster(&self) -> &ClusterTopology {
        &self.cluster
    }

    fn reg_mut<R>(&self, what: &str, f: impl FnOnce(&mut Registration) -> R) -> R {
        let mut g = self.reg.lock().unwrap();
        let reg = g
            .as_mut()
            .unwrap_or_else(|| panic!("{what} after run() started"));
        f(reg)
    }
}

impl Platform for VirtualPlatform {
    fn now_ns(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.now())
        } else {
            0
        }
    }

    fn compute(&self, ns: u64) {
        if in_worker() {
            with_ctx(|c| c.offset.set(c.offset.get() + ns));
        }
    }

    fn yield_now(&self) {
        // A real scheduler round-trip (plus a minimal advance): without
        // it, a thread busy-waiting on shared memory would never let its
        // peers run. Pre-run (no worker context) it is a no-op.
        if in_worker() {
            self.compute(1);
            with_ctx(|c| {
                c.sync(Op::Fence);
            });
        }
    }

    fn rng_u64(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.rng.borrow_mut().gen())
        } else {
            SmallRng::seed_from_u64(self.seed).gen()
        }
    }

    fn lock_create(&self, kind: LockKind) -> LockId {
        self.reg_mut("lock_create", |r| {
            r.lock_specs.push(kind);
            LockId(r.lock_specs.len() - 1)
        })
    }

    fn current_tid(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.tid as u64)
        } else {
            u64::MAX
        }
    }

    fn node_count(&self) -> Option<u32> {
        Some(self.cluster.nodes)
    }

    fn lock_boost(&self, lock: LockId, tid: u64) {
        with_ctx(|c| {
            c.sync(Op::LockBoost { lock: lock.0, tid });
        });
    }

    fn lock_acquire(&self, lock: LockId, class: PathClass) -> CsToken {
        with_ctx(|c| {
            c.sync(Op::LockAcquire {
                lock: lock.0,
                class,
            });
        });
        CsToken::NONE
    }

    fn lock_release(&self, lock: LockId, _class: PathClass, _token: CsToken) {
        with_ctx(|c| {
            c.sync(Op::LockRelease { lock: lock.0 });
        });
    }

    fn register_endpoint(&self, node: u32) -> usize {
        assert!(node < self.cluster.nodes, "endpoint node out of range");
        self.reg_mut("register_endpoint", |r| {
            r.endpoints.push(node);
            r.endpoints.len() - 1
        })
    }

    fn endpoint_count(&self) -> usize {
        self.reg
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |r| r.endpoints.len())
    }

    fn net_send(&self, src: usize, dst: usize, bytes: u64, payload: Payload) {
        self.net_send_delayed(src, dst, bytes, 0, payload);
    }

    fn net_send_delayed(
        &self,
        src: usize,
        dst: usize,
        bytes: u64,
        extra_delay_ns: u64,
        payload: Payload,
    ) {
        with_ctx(|c| {
            c.sync(Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                payload,
            });
        });
    }

    fn net_poll(&self, endpoint: usize) -> Vec<Payload> {
        with_ctx(|c| match c.sync(Op::NetPoll { endpoint }) {
            Reply::Packets { pkts, .. } => pkts,
            _ => unreachable!("poll reply shape"),
        })
    }

    fn net_pending(&self, endpoint: usize) -> bool {
        with_ctx(|c| match c.sync(Op::NetPending { endpoint }) {
            Reply::Flag { v, .. } => v,
            _ => unreachable!("pending reply shape"),
        })
    }

    fn spawn(&self, desc: ThreadDesc, f: Box<dyn FnOnce() + Send>) {
        assert!(
            desc.core.0 < self.cluster.node.total_cores(),
            "thread core out of range"
        );
        assert!(desc.node < self.cluster.nodes, "thread node out of range");
        self.reg_mut("spawn", |r| r.threads.push((desc, f)));
    }

    fn run(&self) -> PlatformReport {
        let reg = self
            .reg
            .lock()
            .unwrap()
            .take()
            .expect("run() may only be called once");
        Scheduler::execute(self, reg)
    }
}

/// The event-loop state (lives only inside `run`).
struct Scheduler<'p> {
    platform: &'p VirtualPlatform,
    heap: BinaryHeap<Ev>,
    seq: u64,
    vlocks: Vec<VLock>,
    mailboxes: Vec<BinaryHeap<Arriving>>,
    nic_free: Vec<u64>,
    ep_node: Vec<u32>,
    threads: Vec<ThreadInfo>,
    pending_op: Vec<Option<Op>>,
    go_tx: Vec<mpsc::Sender<Reply>>,
    req_rx: mpsc::Receiver<Request>,
    live: usize,
    done: Vec<bool>,
    end_ns: u64,
    hash: SchedHash,
}

impl<'p> Scheduler<'p> {
    fn execute(platform: &'p VirtualPlatform, reg: Registration) -> PlatformReport {
        let topo = platform.cluster.node.clone();
        let handoff = platform.cluster.handoff;
        let vlocks: Vec<VLock> = reg
            .lock_specs
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                VLock::new(
                    kind,
                    platform.params,
                    topo.clone(),
                    handoff,
                    platform
                        .seed
                        .wrapping_add(0x9E37_79B9)
                        .wrapping_mul(i as u64 + 1),
                )
            })
            .collect();

        let n_threads = reg.threads.len();
        assert!(n_threads > 0, "run() with no registered threads");
        let (req_tx, req_rx) = mpsc::channel::<Request>();
        let mut go_tx = Vec::with_capacity(n_threads);
        let mut infos = Vec::with_capacity(n_threads);
        let mut joins = Vec::with_capacity(n_threads);

        for (tid, (desc, f)) in reg.threads.into_iter().enumerate() {
            let (gtx, grx) = mpsc::channel::<Reply>();
            go_tx.push(gtx);
            let socket = topo.socket_of(desc.core);
            infos.push(ThreadInfo {
                name: desc.name.clone(),
                node: desc.node,
                core: desc.core,
                socket,
            });
            let rtx = req_tx.clone();
            let seed = platform.seed ^ (0xA5A5_5A5A_u64.wrapping_mul(tid as u64 + 1));
            let name = desc.name.clone();
            let core = desc.core;
            let handle = std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .spawn(move || {
                    // Wait for the scheduler's Start.
                    let first = grx.recv().expect("scheduler alive");
                    let ctx = Rc::new(WorkerCtx {
                        tid,
                        base: Cell::new(first.now()),
                        offset: Cell::new(0),
                        req_tx: rtx.clone(),
                        go_rx: grx,
                        rng: RefCell::new(SmallRng::seed_from_u64(seed)),
                    });
                    CTX.with(|c| *c.borrow_mut() = Some(ctx.clone()));
                    // Announce placement so traced locks and the obs
                    // event layer stamp events with real core/socket,
                    // matching the native platform's workers.
                    mtmpi_locks::set_current_core(core, socket);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    let at = ctx.now();
                    CTX.with(|c| *c.borrow_mut() = None);
                    drop(ctx);
                    match result {
                        Ok(()) => rtx
                            .send(Request::Done { tid, at })
                            .expect("scheduler alive"),
                        Err(e) => {
                            let msg = e
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                                .unwrap_or_else(|| "worker panicked".to_owned());
                            let _ = rtx.send(Request::Panicked { tid, msg });
                        }
                    }
                })
                .expect("spawn sim thread");
            joins.push(handle);
        }

        let mut sched = Scheduler {
            platform,
            heap: BinaryHeap::new(),
            seq: 0,
            vlocks,
            mailboxes: (0..reg.endpoints.len())
                .map(|_| BinaryHeap::new())
                .collect(),
            nic_free: vec![0; platform.cluster.nodes as usize],
            ep_node: reg.endpoints,
            threads: infos,
            pending_op: (0..n_threads).map(|_| None).collect(),
            go_tx,
            req_rx,
            live: n_threads,
            done: vec![false; n_threads],
            end_ns: 0,
            hash: SchedHash::new(),
        };

        for tid in 0..n_threads {
            sched.push(0, EvKind::Start(tid));
        }
        sched.event_loop();

        for j in joins {
            j.join().expect("sim worker panicked");
        }

        PlatformReport {
            end_ns: sched.end_ns,
            lock_traces: sched.vlocks.into_iter().map(VLock::into_trace).collect(),
            sched_trace_hash: sched.hash.0,
        }
    }

    fn push(&mut self, t: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ev { t, seq, kind });
    }

    fn event_loop(&mut self) {
        let debug_every: u64 = std::env::var("MTMPI_SIM_DEBUG")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut n_events: u64 = 0;
        while self.live > 0 {
            let ev = match self.heap.pop() {
                Some(ev) => ev,
                None => self.deadlock_panic(),
            };
            n_events += 1;
            self.hash.event(&ev);
            if debug_every > 0 && n_events.is_multiple_of(debug_every) {
                eprintln!(
                    "[sim] {n_events} events, t={} us, live={}, heap={}",
                    ev.t / 1000,
                    self.live,
                    self.heap.len()
                );
            }
            match ev.kind {
                EvKind::Start(tid) => {
                    self.resume_and_wait(tid, Reply::Go { now: ev.t });
                }
                EvKind::Exec(tid) => {
                    let op = self.pending_op[tid].take().expect("exec without op");
                    self.exec(ev.t, tid, op);
                }
                EvKind::Grant { lock, gen } => match self.vlocks[lock].try_finalize(gen) {
                    GrantOutcome::Stale => {}
                    GrantOutcome::Granted { tid, at } => {
                        self.hash.grant(tid, at);
                        self.resume_and_wait(tid, Reply::Go { now: at });
                    }
                },
            }
        }
    }

    fn exec(&mut self, t: u64, tid: usize, op: Op) {
        match op {
            Op::Fence => {
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::LockBoost { lock, tid: boosted } => {
                self.vlocks[lock].boost(boosted as usize);
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::LockAcquire { lock, class } => {
                let info = &self.threads[tid];
                match self.vlocks[lock].acquire(t, tid, info.core, info.socket, class) {
                    AcquireOutcome::Granted { at } => {
                        self.hash.grant(tid, at);
                        self.resume_and_wait(tid, Reply::Go { now: at });
                    }
                    AcquireOutcome::Queued => {}
                    AcquireOutcome::StealPending { at, gen } => {
                        self.push(at, EvKind::Grant { lock, gen });
                    }
                }
            }
            Op::LockRelease { lock } => {
                let info = &self.threads[tid];
                match self.vlocks[lock].release(t, tid, info.core, info.socket) {
                    ReleaseOutcome::Idle => {}
                    ReleaseOutcome::Scheduled { at, gen } => {
                        self.push(at, EvKind::Grant { lock, gen });
                    }
                }
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                payload,
            } => {
                let src_node = self.ep_node[src] as usize;
                let same = self.ep_node[src] == self.ep_node[dst];
                let mt = self.platform.net.timing(same, bytes);
                let start = self.nic_free[src_node].max(t);
                self.nic_free[src_node] = start + mt.inject_ns;
                // Extra (fault-injected) delay happens in flight: the NIC
                // is released on schedule, only the arrival moves.
                let at = self.nic_free[src_node] + mt.wire_ns + extra_delay_ns;
                let seq = self.seq;
                self.seq += 1;
                self.mailboxes[dst].push(Arriving { at, seq, payload });
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::NetPoll { endpoint } => {
                let mut pkts = Vec::new();
                while self.mailboxes[endpoint].peek().is_some_and(|a| a.at <= t) {
                    pkts.push(self.mailboxes[endpoint].pop().expect("peeked").payload);
                }
                self.resume_and_wait(tid, Reply::Packets { now: t, pkts });
            }
            Op::NetPending { endpoint } => {
                let v = !self.mailboxes[endpoint].is_empty();
                self.resume_and_wait(tid, Reply::Flag { now: t, v });
            }
        }
    }

    /// Resume `tid` with `reply` and block until it submits its next
    /// request (or finishes). Token passing keeps the event order total.
    fn resume_and_wait(&mut self, tid: usize, reply: Reply) {
        self.go_tx[tid].send(reply).expect("worker alive");
        match self.req_rx.recv().expect("worker alive") {
            Request::Op { tid, at, op } => {
                self.pending_op[tid] = Some(op);
                self.push(at, EvKind::Exec(tid));
            }
            Request::Done { tid, at } => {
                self.done[tid] = true;
                self.live -= 1;
                self.end_ns = self.end_ns.max(at);
            }
            Request::Panicked { tid, msg } => {
                panic!("worker `{}` panicked: {msg}", self.threads[tid].name);
            }
        }
    }

    fn deadlock_panic(&self) -> ! {
        let mut msg = String::from("virtual platform deadlock: no runnable events\n");
        for (i, l) in self.vlocks.iter().enumerate() {
            if !l.is_idle() {
                msg.push_str(&format!(
                    "  lock {i}: pending={:?} waiters={:?} ({} queued)\n",
                    l.pending_tid(),
                    l.waiter_tids(),
                    l.queued()
                ));
            }
        }
        for (tid, info) in self.threads.iter().enumerate() {
            if !self.done[tid] {
                msg.push_str(&format!(
                    "  thread {tid} `{}` (node {}, core {:?}) blocked\n",
                    info.name, info.node, info.core
                ));
            }
        }
        panic!("{msg}");
    }
}
