//! The deterministic virtual-time platform.
//!
//! Worker closures run on real OS threads, but **exactly one runs at a
//! time**: each worker blocks until the scheduler resumes it, runs until
//! its next synchronization point (lock or network operation), and hands
//! control back. Local computation ([`Platform::compute`]) accumulates in
//! a thread-local offset without scheduler involvement, so simulation cost
//! scales with synchronization frequency, not with simulated work.
//!
//! Determinism: the scheduler processes events strictly in
//! `(virtual time, sequence)` order, worker interaction is fully
//! serialized, and all randomness (CAS-race jitter, per-thread RNG
//! streams) derives from the run's seed.

pub mod arena;
pub mod calendar;
pub(crate) mod vlock;

use crate::errors::{BlockedOn, BlockedThread, LockDiag, SimError};
use crate::platform::{
    LockId, LockKind, LockModelParams, Payload, Platform, PlatformReport, ThreadDesc,
};
use arena::Arena;
use calendar::CalendarQueue;
use mtmpi_locks::{CsToken, PathClass};
use mtmpi_net::NetModel;
use mtmpi_topology::{ClusterTopology, CoreId, SocketId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use vlock::{AcquireOutcome, GrantOutcome, ReleaseOutcome, VLock};

/// Which event-queue implementation the scheduler runs on.
///
/// The calendar core is the default; the legacy global-heap core is kept
/// behind this toggle (env `MTMPI_SIM_CORE=heap`, or
/// [`VirtualPlatform::set_event_core`]) so hash parity between the two
/// can be asserted on any workload — `xtask bench-diff --cross-core`
/// does exactly that over the committed baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventCore {
    /// Bucketed calendar queue with batch dequeue ([`calendar`]).
    #[default]
    Calendar,
    /// The pre-calendar global `BinaryHeap` core.
    Heap,
}

impl EventCore {
    /// Parse an `MTMPI_SIM_CORE` value; unknown strings mean "default".
    fn parse(v: &str) -> Option<Self> {
        match v.trim().to_ascii_lowercase().as_str() {
            "heap" | "binaryheap" => Some(EventCore::Heap),
            "calendar" => Some(EventCore::Calendar),
            _ => None,
        }
    }

    fn from_env() -> Option<Self> {
        std::env::var("MTMPI_SIM_CORE")
            .ok()
            .as_deref()
            .and_then(Self::parse)
    }
}

/// Parse an `MTMPI_FUEL` value: a positive event count. `0`, empty, or
/// unparsable all mean "unlimited" so `MTMPI_FUEL=0` can switch the
/// bound off in scripts.
fn fuel_from_env(v: Option<&str>) -> Option<u64> {
    v.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&f| f > 0)
}

/// Operations a worker submits to the scheduler.
enum Op {
    /// Scheduler round-trip with no effect: lets other threads run up to
    /// this thread's current virtual time (used by `yield_now` so that
    /// busy-waits on shared memory stay live).
    Fence,
    LockBoost {
        lock: usize,
        tid: u64,
    },
    LockAcquire {
        lock: usize,
        class: PathClass,
    },
    LockRelease {
        lock: usize,
    },
    NetSend {
        src: usize,
        dst: usize,
        bytes: u64,
        extra_delay_ns: u64,
        payload: Payload,
    },
    NetPoll {
        endpoint: usize,
    },
    NetPending {
        endpoint: usize,
    },
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Fence => write!(f, "Fence"),
            Op::LockBoost { lock, tid } => write!(f, "LockBoost({lock}, t{tid})"),
            Op::LockAcquire { lock, class } => write!(f, "LockAcquire({lock}, {class:?})"),
            Op::LockRelease { lock } => write!(f, "LockRelease({lock})"),
            Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                ..
            } => {
                if *extra_delay_ns > 0 {
                    write!(f, "NetSend({src}->{dst}, {bytes}B, +{extra_delay_ns}ns)")
                } else {
                    write!(f, "NetSend({src}->{dst}, {bytes}B)")
                }
            }
            Op::NetPoll { endpoint } => write!(f, "NetPoll({endpoint})"),
            Op::NetPending { endpoint } => write!(f, "NetPending({endpoint})"),
        }
    }
}

/// Worker → scheduler messages.
enum Request {
    Op {
        tid: usize,
        at: u64,
        op: Op,
    },
    Done {
        tid: usize,
        at: u64,
    },
    /// The worker's closure panicked; the scheduler re-raises the panic
    /// so `run()` fails with the worker's message instead of hanging.
    Panicked {
        tid: usize,
        msg: String,
    },
}

/// Scheduler → worker resumptions.
enum Reply {
    Go { now: u64 },
    Packets { now: u64, pkts: Vec<Payload> },
    Flag { now: u64, v: bool },
}

impl Reply {
    fn now(&self) -> u64 {
        match self {
            Reply::Go { now } | Reply::Packets { now, .. } | Reply::Flag { now, .. } => *now,
        }
    }
}

/// Thread-local worker context installed while a worker closure runs.
struct WorkerCtx {
    tid: usize,
    base: Cell<u64>,
    offset: Cell<u64>,
    req_tx: mpsc::Sender<Request>,
    go_rx: mpsc::Receiver<Reply>,
    rng: RefCell<SmallRng>,
}

thread_local! {
    static CTX: RefCell<Option<Rc<WorkerCtx>>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind a worker when the scheduler has shut
/// down early (fuel exhaustion / typed deadlock). The worker wrapper
/// swallows it, and the process panic hook stays silent for it, so an
/// aborted run produces exactly one diagnostic: the [`SimError`].
struct SimAbort;

/// Install (once, process-wide) a panic hook that suppresses printing
/// for [`SimAbort`] unwinds and defers to the previous hook otherwise.
fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

impl WorkerCtx {
    fn now(&self) -> u64 {
        self.base.get() + self.offset.get()
    }

    fn sync(&self, op: Op) -> Reply {
        let sent = self.req_tx.send(Request::Op {
            tid: self.tid,
            at: self.now(),
            op,
        });
        let reply = sent.ok().and_then(|()| self.go_rx.recv().ok());
        let Some(reply) = reply else {
            // The scheduler hung up mid-run: it stopped with a typed
            // error and is waiting for workers to unwind.
            std::panic::panic_any(SimAbort);
        };
        self.base.set(reply.now());
        self.offset.set(0);
        reply
    }
}

fn with_ctx<R>(f: impl FnOnce(&WorkerCtx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect(
            "virtual-platform operation outside a worker thread (did you call it before run()?)",
        );
        f(ctx)
    })
}

fn in_worker() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Order-sensitive FNV-1a 64 accumulator over scheduler decisions.
///
/// Every event popped from the heap (the dequeue order *is* the
/// scheduler's decision trace) folds its virtual time, kind, and payload
/// into the hash, and every lock grant folds the granted thread and
/// grant time. Two runs with identical seeds and workloads produce
/// byte-identical event sequences, hence equal hashes; any schedule
/// divergence — a different interleaving, a different grant winner, a
/// shifted arrival — changes it. Exposed per run as
/// [`PlatformReport::sched_trace_hash`] so replay identity can be
/// asserted without comparing full traces.
#[derive(Debug, Clone, Copy)]
struct SchedHash(u64);

impl SchedHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn mix(&mut self, word: u64) {
        // FNV-1a over the 8 little-endian bytes of `word`.
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn event(&mut self, ev: &Ev) {
        self.mix(ev.t);
        match ev.kind {
            EvKind::Start(tid) => {
                self.mix(1);
                self.mix(tid as u64);
            }
            EvKind::Exec(tid) => {
                self.mix(2);
                self.mix(tid as u64);
            }
            EvKind::Grant { lock, gen } => {
                self.mix(3);
                self.mix(lock as u64);
                self.mix(gen);
            }
        }
    }

    fn grant(&mut self, tid: usize, at: u64) {
        self.mix(4);
        self.mix(tid as u64);
        self.mix(at);
    }
}

/// Scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Start(usize),
    Exec(usize),
    Grant { lock: usize, gen: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    t: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for the max-heap: earliest (t, seq) first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl calendar::Keyed for Ev {
    fn time(&self) -> u64 {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// The scheduler's event queue: either the calendar core or the legacy
/// global heap, selected per run by [`EventCore`]. Both pop in exact
/// `(t, seq)` order, and `pop_batch` on both yields one full
/// same-timestamp run, so the decision trace (and `sched_trace_hash`)
/// is identical across cores.
enum EvQueue {
    Heap(BinaryHeap<Ev>),
    Calendar(Box<CalendarQueue<Ev>>),
}

impl EvQueue {
    fn new(core: EventCore) -> Self {
        match core {
            EventCore::Heap => EvQueue::Heap(BinaryHeap::new()),
            EventCore::Calendar => EvQueue::Calendar(Box::default()),
        }
    }

    fn push(&mut self, ev: Ev) {
        match self {
            EvQueue::Heap(h) => h.push(ev),
            EvQueue::Calendar(c) => c.push(ev),
        }
    }

    fn len(&self) -> usize {
        match self {
            EvQueue::Heap(h) => h.len(),
            EvQueue::Calendar(c) => c.len(),
        }
    }

    /// Pop the minimum event and every further event sharing its `t`,
    /// in `(t, seq)` order, into `out`. Returns the count (0 = empty).
    fn pop_batch(&mut self, out: &mut Vec<Ev>) -> usize {
        match self {
            EvQueue::Heap(h) => {
                let Some(first) = h.pop() else { return 0 };
                let t = first.t;
                out.push(first);
                let mut n = 1;
                while h.peek().is_some_and(|e| e.t == t) {
                    out.push(h.pop().expect("peeked"));
                    n += 1;
                }
                n
            }
            EvQueue::Calendar(c) => c.pop_batch(out),
        }
    }
}

/// A mailbox entry: the ordering key of a packet in flight (or waiting)
/// plus the arena slot holding its payload. Keeping payloads out of the
/// per-mailbox heaps means heap sifting moves 20-byte keys, and payload
/// storage is recycled through the [`Arena`] free list — zero
/// per-message allocation in steady state.
struct MailKey {
    at: u64,
    seq: u64,
    slot: u32,
}

impl PartialEq for MailKey {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for MailKey {}
impl Ord for MailKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl PartialOrd for MailKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct ThreadInfo {
    name: String,
    node: u32,
    core: CoreId,
    socket: SocketId,
}

/// Pre-run registration state.
struct Registration {
    lock_specs: Vec<LockKind>,
    endpoints: Vec<u32>, // node per endpoint
    threads: Vec<(ThreadDesc, Box<dyn FnOnce() + Send>)>,
}

/// The deterministic virtual-time platform. See module docs.
pub struct VirtualPlatform {
    cluster: ClusterTopology,
    net: NetModel,
    params: LockModelParams,
    seed: u64,
    reg: Mutex<Option<Registration>>,
    fuel: Mutex<Option<u64>>,
    core: Mutex<EventCore>,
}

impl VirtualPlatform {
    /// Create a platform for the given cluster and network model.
    pub fn new(
        cluster: ClusterTopology,
        net: NetModel,
        params: LockModelParams,
        seed: u64,
    ) -> Self {
        Self {
            cluster,
            net,
            params,
            seed,
            reg: Mutex::new(Some(Registration {
                lock_specs: Vec::new(),
                endpoints: Vec::new(),
                threads: Vec::new(),
            })),
            fuel: Mutex::new(None),
            core: Mutex::new(EventCore::from_env().unwrap_or_default()),
        }
    }

    /// The cluster this platform models.
    pub fn cluster(&self) -> &ClusterTopology {
        &self.cluster
    }

    /// Select the event-queue core for the next run. Overrides the
    /// `MTMPI_SIM_CORE` env toggle read at construction (use this from
    /// tests — it cannot race the way `set_var` does under a parallel
    /// test harness).
    pub fn set_event_core(&self, core: EventCore) {
        *self.core.lock().unwrap() = core;
    }

    fn reg_mut<R>(&self, what: &str, f: impl FnOnce(&mut Registration) -> R) -> R {
        let mut g = self.reg.lock().unwrap();
        let reg = g
            .as_mut()
            .unwrap_or_else(|| panic!("{what} after run() started"));
        f(reg)
    }
}

impl Platform for VirtualPlatform {
    fn now_ns(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.now())
        } else {
            0
        }
    }

    fn compute(&self, ns: u64) {
        if in_worker() {
            with_ctx(|c| c.offset.set(c.offset.get() + ns));
        }
    }

    fn yield_now(&self) {
        // A real scheduler round-trip (plus a minimal advance): without
        // it, a thread busy-waiting on shared memory would never let its
        // peers run. Pre-run (no worker context) it is a no-op.
        if in_worker() {
            self.compute(1);
            with_ctx(|c| {
                c.sync(Op::Fence);
            });
        }
    }

    fn rng_u64(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.rng.borrow_mut().gen())
        } else {
            SmallRng::seed_from_u64(self.seed).gen()
        }
    }

    fn lock_create(&self, kind: LockKind) -> LockId {
        self.reg_mut("lock_create", |r| {
            r.lock_specs.push(kind);
            LockId(r.lock_specs.len() - 1)
        })
    }

    fn current_tid(&self) -> u64 {
        if in_worker() {
            with_ctx(|c| c.tid as u64)
        } else {
            u64::MAX
        }
    }

    fn node_count(&self) -> Option<u32> {
        Some(self.cluster.nodes)
    }

    fn lock_boost(&self, lock: LockId, tid: u64) {
        with_ctx(|c| {
            c.sync(Op::LockBoost { lock: lock.0, tid });
        });
    }

    fn lock_acquire(&self, lock: LockId, class: PathClass) -> CsToken {
        with_ctx(|c| {
            c.sync(Op::LockAcquire {
                lock: lock.0,
                class,
            });
        });
        CsToken::NONE
    }

    fn lock_release(&self, lock: LockId, _class: PathClass, _token: CsToken) {
        with_ctx(|c| {
            c.sync(Op::LockRelease { lock: lock.0 });
        });
    }

    fn register_endpoint(&self, node: u32) -> usize {
        assert!(node < self.cluster.nodes, "endpoint node out of range");
        self.reg_mut("register_endpoint", |r| {
            r.endpoints.push(node);
            r.endpoints.len() - 1
        })
    }

    fn endpoint_count(&self) -> usize {
        self.reg
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |r| r.endpoints.len())
    }

    fn net_send(&self, src: usize, dst: usize, bytes: u64, payload: Payload) {
        self.net_send_delayed(src, dst, bytes, 0, payload);
    }

    fn net_send_delayed(
        &self,
        src: usize,
        dst: usize,
        bytes: u64,
        extra_delay_ns: u64,
        payload: Payload,
    ) {
        with_ctx(|c| {
            c.sync(Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                payload,
            });
        });
    }

    fn net_poll(&self, endpoint: usize) -> Vec<Payload> {
        with_ctx(|c| match c.sync(Op::NetPoll { endpoint }) {
            Reply::Packets { pkts, .. } => pkts,
            _ => unreachable!("poll reply shape"),
        })
    }

    fn net_pending(&self, endpoint: usize) -> bool {
        with_ctx(|c| match c.sync(Op::NetPending { endpoint }) {
            Reply::Flag { v, .. } => v,
            _ => unreachable!("pending reply shape"),
        })
    }

    fn spawn(&self, desc: ThreadDesc, f: Box<dyn FnOnce() + Send>) {
        assert!(
            desc.core.0 < self.cluster.node.total_cores(),
            "thread core out of range"
        );
        assert!(desc.node < self.cluster.nodes, "thread node out of range");
        self.reg_mut("spawn", |r| r.threads.push((desc, f)));
    }

    fn set_fuel(&self, max_events: Option<u64>) {
        *self.fuel.lock().unwrap() = max_events;
    }

    fn run(&self) -> PlatformReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_run(&self) -> Result<PlatformReport, SimError> {
        let mut handle = self.start();
        // An effectively-unbounded budget: fuel or completion wins first.
        handle.step(u64::MAX)?;
        Ok(handle.finish())
    }
}

impl VirtualPlatform {
    /// Launch the registered threads and hand back a resumable
    /// [`RunHandle`] instead of running to completion. The handle is a
    /// `Send` work item: a worker pool (mtmpi-serve) can park it after a
    /// bounded [`RunHandle::step`] and resume it on a *different* OS
    /// thread. [`Platform::try_run`] is exactly
    /// `start()` + `step(u64::MAX)` + `finish()`, so stepping in any
    /// quantum series produces the same event order, `end_ns`, and
    /// `sched_trace_hash` as a monolithic run.
    ///
    /// Panics if called twice (same contract as `run()`).
    pub fn start(&self) -> RunHandle {
        let reg = self
            .reg
            .lock()
            .unwrap()
            .take()
            .expect("run() may only be called once");
        let fuel = self
            .fuel
            .lock()
            .unwrap()
            .or_else(|| fuel_from_env(std::env::var("MTMPI_FUEL").ok().as_deref()));
        let core = *self.core.lock().unwrap();
        RunHandle::launch(self, reg, fuel, core)
    }
}

/// The event-loop state. Owned by a [`RunHandle`]: no borrow of the
/// platform survives `start()` (the network model is cloned in), so the
/// whole scheduler is a movable, `Send` work item.
struct Scheduler {
    net: NetModel,
    q: EvQueue,
    seq: u64,
    vlocks: Vec<VLock>,
    mailboxes: Vec<BinaryHeap<MailKey>>,
    packets: Arena<Payload>,
    nic_free: Vec<u64>,
    ep_node: Vec<u32>,
    threads: Vec<ThreadInfo>,
    pending_op: Vec<Option<Op>>,
    go_tx: Vec<mpsc::Sender<Reply>>,
    req_rx: mpsc::Receiver<Request>,
    live: usize,
    done: Vec<bool>,
    end_ns: u64,
    hash: SchedHash,
}

/// Progress report from one [`RunHandle::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The event budget ran out while threads are still live; call
    /// [`RunHandle::step`] again (from any thread) to continue.
    Pending,
    /// Every thread finished. [`RunHandle::finish`] yields the report.
    Done,
}

/// A launched-but-resumable simulation: the scheduler state of one
/// [`VirtualPlatform::start`] call, steppable in bounded event quanta.
///
/// The handle is `Send` — the worker OS threads it spawned rendezvous
/// with *whichever* thread currently calls [`RunHandle::step`] over the
/// same channels, so a pool can park a run after a quantum and resume it
/// elsewhere. Exactly one thread may step a handle at a time (guaranteed
/// by `&mut self`).
///
/// Determinism contract: the event order consumed by `step` depends only
/// on the registered workload and seed, never on the quantum series —
/// `step(3)` four times hashes the same trace as `step(12)` once.
///
/// Dropping a handle before completion aborts the run: scheduler-side
/// channels hang up and every worker unwinds quietly (the same
/// machinery as fuel/deadlock shutdown), making drop a cancellation
/// point for half-finished tenants.
pub struct RunHandle {
    sched: Scheduler,
    joins: Vec<std::thread::JoinHandle<()>>,
    fuel: Option<u64>,
    n_events: u64,
    /// Current same-timestamp batch plus the resume cursor into it: a
    /// quantum boundary may land mid-batch, so the remainder must survive
    /// the park.
    batch: Vec<Ev>,
    batch_pos: usize,
    debug_every: u64,
    finished: bool,
    aborted: bool,
}

// The point of the refactor: a run is a movable work item. Compile-time
// proof so a stray `Rc`/borrow in the scheduler can't silently pin runs
// to their launching thread again.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RunHandle>();
};

impl RunHandle {
    fn launch(
        platform: &VirtualPlatform,
        reg: Registration,
        fuel: Option<u64>,
        core: EventCore,
    ) -> RunHandle {
        install_abort_hook();
        let topo = platform.cluster.node.clone();
        let handoff = platform.cluster.handoff;
        let vlocks: Vec<VLock> = reg
            .lock_specs
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                VLock::new(
                    kind,
                    platform.params,
                    topo.clone(),
                    handoff,
                    platform
                        .seed
                        .wrapping_add(0x9E37_79B9)
                        .wrapping_mul(i as u64 + 1),
                )
            })
            .collect();

        let n_threads = reg.threads.len();
        assert!(n_threads > 0, "run() with no registered threads");
        let (req_tx, req_rx) = mpsc::channel::<Request>();
        let mut go_tx = Vec::with_capacity(n_threads);
        let mut infos = Vec::with_capacity(n_threads);
        let mut joins = Vec::with_capacity(n_threads);

        for (tid, (desc, f)) in reg.threads.into_iter().enumerate() {
            let (gtx, grx) = mpsc::channel::<Reply>();
            go_tx.push(gtx);
            let socket = topo.socket_of(desc.core);
            infos.push(ThreadInfo {
                name: desc.name.clone(),
                node: desc.node,
                core: desc.core,
                socket,
            });
            let rtx = req_tx.clone();
            let seed = platform.seed ^ (0xA5A5_5A5A_u64.wrapping_mul(tid as u64 + 1));
            let name = desc.name.clone();
            let core = desc.core;
            let handle = std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .spawn(move || {
                    // Wait for the scheduler's Start. A hangup before it
                    // arrives means the run was aborted pre-start.
                    let Ok(first) = grx.recv() else { return };
                    let ctx = Rc::new(WorkerCtx {
                        tid,
                        base: Cell::new(first.now()),
                        offset: Cell::new(0),
                        req_tx: rtx.clone(),
                        go_rx: grx,
                        rng: RefCell::new(SmallRng::seed_from_u64(seed)),
                    });
                    CTX.with(|c| *c.borrow_mut() = Some(ctx.clone()));
                    // Announce placement so traced locks and the obs
                    // event layer stamp events with real core/socket,
                    // matching the native platform's workers.
                    mtmpi_locks::set_current_core(core, socket);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    let at = ctx.now();
                    CTX.with(|c| *c.borrow_mut() = None);
                    drop(ctx);
                    match result {
                        Ok(()) => {
                            let _ = rtx.send(Request::Done { tid, at });
                        }
                        Err(e) if e.is::<SimAbort>() => {
                            // Scheduler-initiated shutdown (typed error):
                            // unwind quietly, the SimError is the report.
                        }
                        Err(e) => {
                            let msg = e
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                                .unwrap_or_else(|| "worker panicked".to_owned());
                            let _ = rtx.send(Request::Panicked { tid, msg });
                        }
                    }
                })
                .expect("spawn sim thread");
            joins.push(handle);
        }

        let mut sched = Scheduler {
            net: platform.net.clone(),
            q: EvQueue::new(core),
            seq: 0,
            vlocks,
            mailboxes: (0..reg.endpoints.len())
                .map(|_| BinaryHeap::new())
                .collect(),
            packets: Arena::new(),
            nic_free: vec![0; platform.cluster.nodes as usize],
            ep_node: reg.endpoints,
            threads: infos,
            pending_op: (0..n_threads).map(|_| None).collect(),
            go_tx,
            req_rx,
            live: n_threads,
            done: vec![false; n_threads],
            end_ns: 0,
            hash: SchedHash::new(),
        };

        for tid in 0..n_threads {
            sched.push(0, EvKind::Start(tid));
        }
        RunHandle {
            sched,
            joins,
            fuel,
            n_events: 0,
            batch: Vec::new(),
            batch_pos: 0,
            debug_every: std::env::var("MTMPI_SIM_DEBUG")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            finished: false,
            aborted: false,
        }
    }

    /// Execute up to `budget` further scheduler events.
    ///
    /// Events are dequeued one same-timestamp batch at a time. This is
    /// trace-identical to the old pop-one loop: every event pushed while
    /// a batch is processed carries `t` ≥ the batch time (virtual time
    /// is monotone) and, at equal `t`, a `seq` above every batched
    /// event — so it sorts after the whole batch either way. The one
    /// asymmetry the old loop had is reproduced exactly: when the last
    /// thread finishes mid-batch, the remaining (stale-grant) events are
    /// dropped *unhashed*, as the old loop left them unpopped.
    ///
    /// Errors (deadlock, [`SimError::FuelExhausted`]) abort the run —
    /// workers are unwound and joined before the error returns, and the
    /// handle refuses further stepping. A quantum boundary is *not* a
    /// deadlock probe: when the budget expires exactly at a batch edge,
    /// the next batch stays queued for the next call, so `Pending` never
    /// converts a would-be deadlock report into silence (the next `step`
    /// reports it).
    pub fn step(&mut self, budget: u64) -> Result<StepOutcome, SimError> {
        assert!(!self.aborted, "step() after the run aborted");
        if self.finished {
            return Ok(StepOutcome::Done);
        }
        let mut stepped: u64 = 0;
        loop {
            if self.batch_pos == self.batch.len() {
                if self.sched.live == 0 {
                    self.finished = true;
                    return Ok(StepOutcome::Done);
                }
                if stepped >= budget {
                    return Ok(StepOutcome::Pending);
                }
                self.batch.clear();
                self.batch_pos = 0;
                if self.sched.q.pop_batch(&mut self.batch) == 0 {
                    let e = self.sched.deadlock_error();
                    self.abort();
                    return Err(e);
                }
            }
            if self.sched.live == 0 {
                // Last thread finished mid-batch: drop the remaining
                // (stale-grant) events unhashed.
                self.finished = true;
                return Ok(StepOutcome::Done);
            }
            if stepped >= budget {
                return Ok(StepOutcome::Pending);
            }
            let ev = self.batch[self.batch_pos];
            if let Some(f) = self.fuel {
                if self.n_events >= f {
                    let queued = self.sched.q.len() + (self.batch.len() - self.batch_pos);
                    let e = self.sched.fuel_error(f, self.n_events, ev.t, queued);
                    self.abort();
                    return Err(e);
                }
            }
            self.batch_pos += 1;
            self.n_events += 1;
            stepped += 1;
            self.sched.hash.event(&ev);
            if self.debug_every > 0 && self.n_events.is_multiple_of(self.debug_every) {
                eprintln!(
                    "[sim] {} events, t={} us, live={}, queued={}",
                    self.n_events,
                    ev.t / 1000,
                    self.sched.live,
                    self.sched.q.len()
                );
            }
            self.sched.dispatch(ev);
        }
    }

    /// Events executed so far (monotone across `step` calls).
    pub fn events(&self) -> u64 {
        self.n_events
    }

    /// Latest virtual end time observed from finished threads.
    pub fn end_ns(&self) -> u64 {
        self.sched.end_ns
    }

    /// `true` once every thread has finished ([`StepOutcome::Done`]).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Join the (already-exited) workers and produce the report.
    /// Panics if the run has not reached [`StepOutcome::Done`].
    pub fn finish(mut self) -> PlatformReport {
        assert!(
            self.finished,
            "finish() before the run completed (step to Done first)"
        );
        for j in self.joins.drain(..) {
            j.join().expect("sim worker panicked");
        }
        PlatformReport {
            end_ns: self.sched.end_ns,
            lock_traces: std::mem::take(&mut self.sched.vlocks)
                .into_iter()
                .map(VLock::into_trace)
                .collect(),
            sched_trace_hash: self.sched.hash.0,
            events: self.n_events,
        }
    }

    /// Hang up on every worker: their blocked `go_rx.recv()` fails,
    /// `sync` unwinds with `SimAbort`, and the joins complete. The typed
    /// error is the sole diagnostic.
    fn abort(&mut self) {
        self.aborted = true;
        self.sched.go_tx.clear();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        // Cancellation: a handle dropped mid-run (tenant evicted, error
        // elsewhere, panic unwinding through a worker pool) shuts its
        // workers down exactly like a fuel abort. After `finish()` or
        // `abort()` the joins are empty and this is a no-op.
        if self.joins.is_empty() {
            return;
        }
        self.sched.go_tx.clear();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Scheduler {
    fn push(&mut self, t: u64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.q.push(Ev { t, seq, kind });
    }

    /// Execute one dequeued event.
    fn dispatch(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Start(tid) => {
                self.resume_and_wait(tid, Reply::Go { now: ev.t });
            }
            EvKind::Exec(tid) => {
                let op = self.pending_op[tid].take().expect("exec without op");
                self.exec(ev.t, tid, op);
            }
            EvKind::Grant { lock, gen } => match self.vlocks[lock].try_finalize(gen) {
                GrantOutcome::Stale => {}
                GrantOutcome::Granted { tid, at } => {
                    self.hash.grant(tid, at);
                    self.resume_and_wait(tid, Reply::Go { now: at });
                }
            },
        }
    }

    fn exec(&mut self, t: u64, tid: usize, op: Op) {
        match op {
            Op::Fence => {
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::LockBoost { lock, tid: boosted } => {
                self.vlocks[lock].boost(boosted as usize);
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::LockAcquire { lock, class } => {
                let info = &self.threads[tid];
                match self.vlocks[lock].acquire(t, tid, info.core, info.socket, class) {
                    AcquireOutcome::Granted { at } => {
                        self.hash.grant(tid, at);
                        self.resume_and_wait(tid, Reply::Go { now: at });
                    }
                    AcquireOutcome::Queued => {}
                    AcquireOutcome::StealPending { at, gen } => {
                        self.push(at, EvKind::Grant { lock, gen });
                    }
                }
            }
            Op::LockRelease { lock } => {
                let info = &self.threads[tid];
                match self.vlocks[lock].release(t, tid, info.core, info.socket) {
                    ReleaseOutcome::Idle => {}
                    ReleaseOutcome::Scheduled { at, gen } => {
                        self.push(at, EvKind::Grant { lock, gen });
                    }
                }
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::NetSend {
                src,
                dst,
                bytes,
                extra_delay_ns,
                payload,
            } => {
                let src_node = self.ep_node[src] as usize;
                let same = self.ep_node[src] == self.ep_node[dst];
                let mt = self.net.timing(same, bytes);
                let start = self.nic_free[src_node].max(t);
                self.nic_free[src_node] = start + mt.inject_ns;
                // Extra (fault-injected) delay happens in flight: the NIC
                // is released on schedule, only the arrival moves.
                let at = self.nic_free[src_node] + mt.wire_ns + extra_delay_ns;
                let seq = self.seq;
                self.seq += 1;
                let slot = self.packets.insert(payload);
                self.mailboxes[dst].push(MailKey { at, seq, slot });
                self.resume_and_wait(tid, Reply::Go { now: t });
            }
            Op::NetPoll { endpoint } => {
                let mut pkts = Vec::new();
                while self.mailboxes[endpoint].peek().is_some_and(|a| a.at <= t) {
                    let k = self.mailboxes[endpoint].pop().expect("peeked");
                    pkts.push(self.packets.take(k.slot));
                }
                self.resume_and_wait(tid, Reply::Packets { now: t, pkts });
            }
            Op::NetPending { endpoint } => {
                let v = !self.mailboxes[endpoint].is_empty();
                self.resume_and_wait(tid, Reply::Flag { now: t, v });
            }
        }
    }

    /// Resume `tid` with `reply` and block until it submits its next
    /// request (or finishes). Token passing keeps the event order total.
    fn resume_and_wait(&mut self, tid: usize, reply: Reply) {
        self.go_tx[tid].send(reply).expect("worker alive");
        match self.req_rx.recv().expect("worker alive") {
            Request::Op { tid, at, op } => {
                self.pending_op[tid] = Some(op);
                self.push(at, EvKind::Exec(tid));
            }
            Request::Done { tid, at } => {
                self.done[tid] = true;
                self.live -= 1;
                self.end_ns = self.end_ns.max(at);
            }
            Request::Panicked { tid, msg } => {
                panic!("worker `{}` panicked: {msg}", self.threads[tid].name);
            }
        }
    }

    /// Snapshot every live thread's blocked state: parked in a lock
    /// queue, mid-round-trip on a submitted op, or runnable (its resume
    /// event is still queued). Index-vector based — iteration order is
    /// tid order, deterministically.
    fn blocked_threads(&self) -> Vec<BlockedThread> {
        let mut lock_of: Vec<Option<usize>> = vec![None; self.threads.len()];
        for (i, l) in self.vlocks.iter().enumerate() {
            for tid in l.waiter_tids() {
                lock_of[tid] = Some(i);
            }
            if let Some(tid) = l.pending_tid() {
                lock_of[tid] = Some(i);
            }
        }
        self.threads
            .iter()
            .enumerate()
            .filter(|&(tid, _)| !self.done[tid])
            .map(|(tid, info)| {
                let on = if let Some(lock) = lock_of[tid] {
                    BlockedOn::Lock { lock }
                } else if let Some(op) = &self.pending_op[tid] {
                    BlockedOn::Op {
                        desc: format!("{op:?}"),
                    }
                } else {
                    BlockedOn::Runnable
                };
                BlockedThread {
                    tid,
                    name: info.name.clone(),
                    node: info.node,
                    on,
                }
            })
            .collect()
    }

    /// `(endpoint, packets)` for every mailbox still holding packets.
    fn undelivered(&self) -> Vec<(usize, usize)> {
        self.mailboxes
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, m)| (i, m.len()))
            .collect()
    }

    fn deadlock_error(&self) -> SimError {
        SimError::Deadlock {
            threads: self.blocked_threads(),
            locks: self
                .vlocks
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_idle())
                .map(|(i, l)| LockDiag {
                    lock: i,
                    pending: l.pending_tid(),
                    waiters: l.waiter_tids(),
                    queued: l.queued(),
                })
                .collect(),
            undelivered: self.undelivered(),
        }
    }

    fn fuel_error(&self, fuel: u64, executed: u64, now_ns: u64, queued: usize) -> SimError {
        SimError::FuelExhausted {
            fuel,
            executed,
            now_ns,
            queued_events: queued,
            threads: self.blocked_threads(),
            undelivered: self.undelivered(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_env_parsing() {
        assert_eq!(fuel_from_env(None), None);
        assert_eq!(fuel_from_env(Some("")), None);
        assert_eq!(fuel_from_env(Some("0")), None, "0 means unlimited");
        assert_eq!(fuel_from_env(Some("not-a-number")), None);
        assert_eq!(fuel_from_env(Some("50000")), Some(50_000));
        assert_eq!(fuel_from_env(Some("  1234 ")), Some(1234));
    }

    #[test]
    fn event_core_parsing() {
        assert_eq!(EventCore::parse("heap"), Some(EventCore::Heap));
        assert_eq!(EventCore::parse("HEAP"), Some(EventCore::Heap));
        assert_eq!(EventCore::parse("binaryheap"), Some(EventCore::Heap));
        assert_eq!(EventCore::parse("calendar"), Some(EventCore::Calendar));
        assert_eq!(EventCore::parse("banana"), None);
        assert_eq!(EventCore::default(), EventCore::Calendar);
    }
}
