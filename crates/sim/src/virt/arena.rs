//! Free-list slab arena for scheduler-owned payloads.
//!
//! The virtual platform's mailboxes used to heap-allocate one `Arriving`
//! node per in-flight packet and free it on delivery — per-message heap
//! traffic on the hottest path. The arena replaces that with slot
//! recycling: [`Arena::insert`] hands out a `u32` slot (reusing a freed
//! slot when one exists), [`Arena::take`] moves the value out and pushes
//! the slot onto the free list. After warm-up the slab stops growing and
//! steady-state message flow performs **zero allocations** — mailbox
//! heaps order small `(at, seq, slot)` keys and the payloads stay put.
//!
//! Lifetime rule (DESIGN.md §16): a slot is live from `insert` (packet
//! injected) to exactly one `take` (packet delivered by `NetPoll`).
//! Slots are recycled *keyed off completion* — never while the mailbox
//! key referencing them is still queued. Dropping the arena drops any
//! still-live values (undelivered packets at end of run).

/// Slot-recycling slab. See module docs.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Store `v`, returning its slot. Reuses a freed slot when possible.
    pub fn insert(&mut self, v: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none(), "free-list slot live");
                self.slots[i as usize] = Some(v);
                i
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "arena full");
                self.slots.push(Some(v));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Move the value out of `slot` and recycle the slot.
    ///
    /// Panics if the slot is not live — that is a scheduler bug (a
    /// mailbox key delivered twice, or a key referencing a freed slot).
    pub fn take(&mut self, slot: u32) -> T {
        let v = self.slots[slot as usize]
            .take()
            .expect("arena slot taken twice");
        self.free.push(slot);
        v
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no value is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (high-water mark of live values).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut a = Arena::new();
        let s0 = a.insert("a");
        let s1 = a.insert("b");
        assert_eq!(a.len(), 2);
        assert_eq!(a.take(s0), "a");
        assert_eq!(a.take(s1), "b");
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo_and_capacity_stops_growing() {
        let mut a = Arena::new();
        let s = a.insert(1u64);
        a.take(s);
        // Steady state: one live value at a time never grows the slab.
        for i in 0..1000u64 {
            let s2 = a.insert(i);
            assert_eq!(s2, s, "freed slot must be reused");
            assert_eq!(a.take(s2), i);
        }
        assert_eq!(a.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_is_a_bug() {
        let mut a = Arena::new();
        let s = a.insert(5);
        a.take(s);
        a.take(s);
    }

    #[test]
    fn interleaved_population_keeps_len_exact() {
        let mut a = Arena::new();
        let mut live = Vec::new();
        for i in 0..64u32 {
            live.push(a.insert(i));
            if i % 3 == 0 {
                let s = live.remove(0);
                a.take(s);
            }
        }
        assert_eq!(a.len(), live.len());
        assert!(a.capacity() <= 64);
    }
}
