//! The [`Platform`] trait and its shared types.

use crate::errors::SimError;
use mtmpi_metrics::CsTrace;
use mtmpi_topology::CoreId;
use std::any::Any;

/// Opaque message payload carried through the platform mailbox. The
/// runtime downcasts it back to its packet type on receipt.
pub type Payload = Box<dyn Any + Send>;

/// Identifier of a platform-managed critical-section lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockId(pub usize);

/// Which arbitration the lock uses — the paper's three contenders plus the
/// extra baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// NPTL-style barging mutex (the baseline under study).
    Mutex,
    /// FIFO ticket lock (remedy 1, §5.1).
    Ticket,
    /// Two-level priority ticket lock (remedy 2, §5.2).
    Priority,
    /// Socket-aware cohort lock with a hand-over budget (§7 extension).
    Cohort {
        /// Maximum consecutive same-socket hand-overs.
        budget: u32,
    },
    /// Test-and-set spinlock baseline.
    Tas,
    /// Test-and-test-and-set spinlock baseline.
    Ttas,
    /// MCS queue lock baseline (native only; modelled as FIFO virtually).
    Mcs,
    /// CLH queue lock baseline (native only; modelled as FIFO virtually).
    Clh,
    /// Selective wake-up (the paper's §9 future-work idea): FIFO order,
    /// but a waiter whose request was just completed (signalled by the
    /// runtime via [`Platform::lock_boost`]) jumps the queue — it is the
    /// thread most likely to do useful work (free + reissue).
    Selective,
}

impl LockKind {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            LockKind::Mutex => "mutex",
            LockKind::Ticket => "ticket",
            LockKind::Priority => "priority",
            LockKind::Cohort { .. } => "cohort",
            LockKind::Tas => "tas",
            LockKind::Ttas => "ttas",
            LockKind::Mcs => "mcs",
            LockKind::Clh => "clh",
            LockKind::Selective => "selective",
        }
    }
}

/// Cost parameters of the virtual-platform lock model.
///
/// The *ratios* between these constants, not their absolute values, drive
/// the reproduced phenomena; defaults are calibrated so the §4.3 bias
/// factors land near the paper's (≈2× core, ≈1.25× socket for the mutex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockModelParams {
    /// Cost of acquiring a free, never-contended lock (local CAS).
    pub uncontended_ns: u64,
    /// Random jitter added to each contender's observation time in the
    /// mutex CAS race (models pipeline/coherence nondeterminism; small,
    /// so NUMA distances stay meaningful).
    pub jitter_ns: u64,
    /// Additional uniform jitter on the futex wake latency (kernel
    /// scheduling noise; large relative to `jitter_ns`).
    pub wake_jitter_ns: u64,
    /// Function-call + atomic overhead of an unlock-then-relock
    /// turnaround: the previous owner re-contending pays this before its
    /// CAS lands, which is what gives freshly-spinning waiters a chance.
    pub steal_overhead_ns: u64,
    /// How long a mutex waiter spins in user space before FUTEX_WAIT.
    pub spin_window_ns: u64,
    /// FUTEX_WAKE-to-userspace-retry latency for a sleeping waiter.
    pub wake_ns: u64,
    /// Maximum consecutive main-path grants while progress-path threads
    /// wait, for the priority model. The real Fig 7 lock bounds bursts
    /// structurally (a low-priority thread already queued on `ticket_B`
    /// slips in at a burst boundary); unbounded priority would starve
    /// the progress loop that *frees* requests.
    pub priority_burst: u32,
    /// Maximum acquisition records kept per lock trace (memory bound;
    /// the §4.3 estimators converge long before this many samples).
    pub trace_cap: usize,
    /// Cost of re-fetching the critical section's *working set* (queue
    /// heads, request objects) when ownership moves to another core on
    /// the same socket. This is the real price of fair rotation — the
    /// runtime's structures are cache-hot only for the previous owner.
    pub migrate_same_socket_ns: u64,
    /// Same, when ownership crosses the socket boundary.
    pub migrate_cross_socket_ns: u64,
}

impl Default for LockModelParams {
    fn default() -> Self {
        Self {
            uncontended_ns: 15,
            jitter_ns: 60,
            wake_jitter_ns: 1_200,
            steal_overhead_ns: 60,
            priority_burst: 3,
            spin_window_ns: 300,
            wake_ns: 3_000,
            trace_cap: 200_000,
            migrate_same_socket_ns: 350,
            migrate_cross_socket_ns: 800,
        }
    }
}

/// Placement of a worker thread.
#[derive(Debug, Clone)]
pub struct ThreadDesc {
    /// Human-readable name (shows up in deadlock diagnostics).
    pub name: String,
    /// Node index in the cluster.
    pub node: u32,
    /// Core within the node the thread is pinned to.
    pub core: CoreId,
}

/// What a completed run reports back.
#[derive(Debug, Default)]
pub struct PlatformReport {
    /// Virtual end time (or wall time in model-ns for the native
    /// platform): the latest time any worker finished.
    pub end_ns: u64,
    /// Acquisition trace per lock, indexed by [`LockId`].
    pub lock_traces: Vec<CsTrace>,
    /// Order-sensitive FNV-1a 64 hash of every scheduler decision the
    /// virtual platform made (event dequeue order, grant outcomes).
    /// Same seed + same workload → same hash; any divergence in the
    /// schedule changes it. The native platform is not deterministic and
    /// reports 0.
    pub sched_trace_hash: u64,
    /// Scheduler events processed during the run (the quantity the fuel
    /// bound counts, and the numerator of `sim_events_per_sec`). The
    /// native platform has no event loop and reports 0.
    pub events: u64,
}

/// Execution platform abstraction. See the crate docs for the contract.
///
/// All methods except [`Platform::spawn`], [`Platform::lock_create`],
/// [`Platform::register_endpoint`] and [`Platform::run`] are called from
/// worker threads; the latter four are called from the controlling thread
/// before/around the run.
pub trait Platform: Send + Sync {
    /// Current time in nanoseconds (virtual, or scaled wall time).
    fn now_ns(&self) -> u64;

    /// Account for `ns` of local computation.
    fn compute(&self, ns: u64);

    /// Politely give other threads a chance (no-op in virtual time beyond
    /// a minimal advance).
    fn yield_now(&self);

    /// Deterministic-per-thread random number (virtual platform) or
    /// thread-local PRNG draw (native).
    fn rng_u64(&self) -> u64;

    /// Create a critical-section lock of the given kind. Pre-run only.
    fn lock_create(&self, kind: LockKind) -> LockId;

    /// Enter the critical section from the given path class.
    fn lock_acquire(&self, lock: LockId, class: mtmpi_locks::PathClass) -> mtmpi_locks::CsToken;

    /// Leave the critical section.
    fn lock_release(
        &self,
        lock: LockId,
        class: mtmpi_locks::PathClass,
        token: mtmpi_locks::CsToken,
    );

    /// Register a communication endpoint (an MPI rank) living on `node`.
    /// Returns the endpoint id. Pre-run only.
    fn register_endpoint(&self, node: u32) -> usize;

    /// Number of registered endpoints.
    fn endpoint_count(&self) -> usize;

    /// Send `bytes` of payload from endpoint `src` to endpoint `dst`. The
    /// payload becomes visible to `net_poll(dst)` after the modelled
    /// network delay. Returns immediately (asynchronous injection).
    fn net_send(&self, src: usize, dst: usize, bytes: u64, payload: Payload);

    /// [`Platform::net_send`] with `extra_delay_ns` of additional
    /// in-flight latency on top of the modelled network delay. Used by
    /// fault injection to delay or reorder individual packets; the NIC
    /// occupancy (injection serialization) is unaffected — only the
    /// arrival time moves. Platforms that cannot model per-packet delay
    /// fall back to an undelayed send.
    fn net_send_delayed(
        &self,
        src: usize,
        dst: usize,
        bytes: u64,
        extra_delay_ns: u64,
        payload: Payload,
    ) {
        let _ = extra_delay_ns;
        self.net_send(src, dst, bytes, payload);
    }

    /// Drain all packets that have arrived at `endpoint` by now.
    fn net_poll(&self, endpoint: usize) -> Vec<Payload>;

    /// Whether any packet is in flight or queued for `endpoint`.
    fn net_pending(&self, endpoint: usize) -> bool;

    /// Number of cluster nodes this platform models, when known. Used by
    /// the runtime's world builder to validate rank→node placements
    /// before registering endpoints.
    fn node_count(&self) -> Option<u32> {
        None
    }

    /// Stable id of the calling worker thread (used to address
    /// [`Platform::lock_boost`] hints).
    fn current_tid(&self) -> u64 {
        u64::MAX
    }

    /// Hint that thread `tid` — currently waiting on `lock` or about to
    /// request it — just became likely to do useful work (e.g. its
    /// request completed). Only the `Selective` lock kind consumes this;
    /// others ignore it.
    fn lock_boost(&self, _lock: LockId, _tid: u64) {}

    /// Register a worker thread. Pre-run only.
    fn spawn(&self, desc: ThreadDesc, f: Box<dyn FnOnce() + Send>);

    /// Bound the next run to at most `max_events` scheduler events
    /// (`None` = unlimited). On the virtual platform an exhausted bound
    /// fails the run with [`SimError::FuelExhausted`]; platforms without
    /// an event loop ignore the hint. Pre-run only.
    fn set_fuel(&self, _max_events: Option<u64>) {}

    /// Run all registered workers to completion and report.
    ///
    /// Panics (with the [`SimError`] rendering) on livelock/deadlock;
    /// use [`Platform::try_run`] for the typed surface.
    fn run(&self) -> PlatformReport;

    /// Like [`Platform::run`], but fuel exhaustion and deadlock come
    /// back as typed [`SimError`]s instead of panics. The default
    /// forwards to `run` for platforms that cannot fail this way.
    fn try_run(&self) -> Result<PlatformReport, SimError> {
        Ok(self.run())
    }
}
