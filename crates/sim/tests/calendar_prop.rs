//! Property: the calendar queue dequeues in **byte-identical** `(t, seq)`
//! order to a reference `BinaryHeap` — over randomized seeded streams,
//! same-bucket ties, far-future overflow pushes, and interleaved
//! push/pop/pop_batch traffic. This is the ordering contract the
//! scheduler's `sched_trace_hash` stability rests on.

use mtmpi_sim::{CalendarQueue, Keyed};
use proptest::prelude::*;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct It {
    t: u64,
    seq: u64,
}

impl Keyed for It {
    fn time(&self) -> u64 {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Min-order wrapper for the reference heap.
#[derive(PartialEq, Eq)]
struct Rev(It);
impl Ord for Rev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.t, other.0.seq).cmp(&(self.0.t, self.0.seq))
    }
}
impl PartialOrd for Rev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
enum Step {
    Push(u64),
    Pop,
    PopBatch,
}

/// Mixed op stream biased toward the shapes that stress the calendar:
/// pushes on a same-bucket tie grid, generic in-window pushes,
/// far-future overflow pushes, and interleaved pops.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0u64..10, 0u64..64, 0u64..(1u64 << 34)).prop_map(|(kind, bucket, raw)| match kind {
        0..=2 => Step::Push(bucket * 256),
        3 | 4 => Step::Push(raw % 100_000),
        5 => Step::Push(raw),
        6..=8 => Step::Pop,
        _ => Step::PopBatch,
    })
}

fn drain_batch_reference(reference: &mut BinaryHeap<Rev>) -> Vec<It> {
    let mut out = Vec::new();
    let Some(first) = reference.pop() else {
        return out;
    };
    let t = first.0.t;
    out.push(first.0);
    while reference.peek().is_some_and(|r| r.0.t == t) {
        out.push(reference.pop().expect("peeked").0);
    }
    out
}

proptest! {
    #[test]
    fn interleaved_ops_match_reference_heap(
        steps in proptest::collection::vec(step_strategy(), 1..300),
    ) {
        // Small geometry (16 ns buckets × 32 slots = 512 ns window) so
        // the test exercises rotation and overflow constantly.
        let mut cal = CalendarQueue::with_geometry(4, 32);
        let mut reference: BinaryHeap<Rev> = BinaryHeap::new();
        let mut seq = 0u64;
        for step in &steps {
            match step {
                Step::Push(t) => {
                    cal.push(It { t: *t, seq });
                    reference.push(Rev(It { t: *t, seq }));
                    seq += 1;
                }
                Step::Pop => {
                    prop_assert_eq!(cal.pop(), reference.pop().map(|r| r.0));
                    prop_assert_eq!(cal.len(), reference.len());
                }
                Step::PopBatch => {
                    let mut got = Vec::new();
                    cal.pop_batch(&mut got);
                    let want = drain_batch_reference(&mut reference);
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Full drain: the tails must agree element-for-element too.
        while let Some(want) = reference.pop() {
            prop_assert_eq!(cal.pop(), Some(want.0));
        }
        prop_assert!(cal.is_empty());
    }
}

/// splitmix64 — seeded stream generator (no external RNG needed).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn seeded_bulk_streams_drain_identically() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let mut s = seed;
        let mut cal = CalendarQueue::new();
        let mut reference: BinaryHeap<Rev> = BinaryHeap::new();
        for seq in 0..10_000u64 {
            let r = splitmix(&mut s);
            // Tie-heavy grid with a 1-in-16 far-future overflow jump.
            let t = if r.is_multiple_of(16) {
                (r >> 8) % (1 << 36)
            } else {
                ((r >> 8) % 4096) * 256
            };
            cal.push(It { t, seq });
            reference.push(Rev(It { t, seq }));
        }
        let mut n = 0u64;
        while let Some(want) = reference.pop() {
            assert_eq!(cal.pop(), Some(want.0), "seed {seed}, position {n}");
            n += 1;
        }
        assert!(cal.is_empty());
    }
}

#[test]
fn batched_drain_concatenation_equals_single_pops() {
    let mut s = 7u64;
    let mut cal = CalendarQueue::with_geometry(6, 64);
    let mut reference: BinaryHeap<Rev> = BinaryHeap::new();
    for seq in 0..4_000u64 {
        let r = splitmix(&mut s);
        let t = ((r >> 8) % 512) * 64;
        cal.push(It { t, seq });
        reference.push(Rev(It { t, seq }));
    }
    let mut got = Vec::new();
    let mut batch = Vec::new();
    while cal.pop_batch(&mut batch) > 0 {
        assert!(
            batch.iter().all(|it| it.t == batch[0].t),
            "batch spans timestamps"
        );
        got.append(&mut batch);
    }
    let mut want = Vec::new();
    while let Some(r) = reference.pop() {
        want.push(r.0);
    }
    assert_eq!(got, want);
}
