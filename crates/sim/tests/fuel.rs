//! The determinism contract's failure modes, typed: fuel-bounded
//! execution converting livelock into `SimError::FuelExhausted` with a
//! per-thread blocked-state snapshot, and queue-drain deadlock as
//! `SimError::Deadlock` naming every parked thread and lock.

use mtmpi_locks::PathClass;
use mtmpi_net::NetModel;
use mtmpi_sim::{
    BlockedOn, LockKind, LockModelParams, Platform, SimError, ThreadDesc, VirtualPlatform,
};
use mtmpi_topology::presets::nehalem_cluster_scaled;
use mtmpi_topology::CoreId;
use std::sync::Arc;

fn platform(seed: u64) -> Arc<VirtualPlatform> {
    Arc::new(VirtualPlatform::new(
        nehalem_cluster_scaled(2),
        NetModel::qdr(),
        LockModelParams::default(),
        seed,
    ))
}

fn desc(name: &str, core: u32) -> ThreadDesc {
    ThreadDesc {
        name: name.into(),
        node: 0,
        core: CoreId(core),
    }
}

/// Two receivers polling mailboxes that will never fill: an unbounded
/// run would spin forever. The fuel bound must stop it with a typed
/// error whose snapshot names both threads and the op each is stuck in,
/// plus the mailbox holding the packet nobody polls.
fn seed_livelock(p: &Arc<VirtualPlatform>) {
    let polled = p.register_endpoint(0);
    let ignored = p.register_endpoint(1);
    for (i, name) in ["rx0", "rx1"].iter().enumerate() {
        let p2 = p.clone();
        p.spawn(
            desc(name, i as u32),
            Box::new(move || loop {
                if !p2.net_poll(polled).is_empty() {
                    return;
                }
                p2.compute(200);
            }),
        );
    }
    let p2 = p.clone();
    p.spawn(
        desc("tx", 2),
        Box::new(move || {
            // One packet into the mailbox nobody polls: it must show up
            // in the snapshot as undelivered.
            p2.net_send(polled, ignored, 64, Box::new(1u32));
        }),
    );
}

#[test]
fn livelock_exhausts_fuel_with_blocked_state_snapshot() {
    let p = platform(11);
    seed_livelock(&p);
    p.set_fuel(Some(400));
    let err = p.try_run().expect_err("livelock must not complete");
    let SimError::FuelExhausted {
        fuel,
        executed,
        queued_events,
        threads,
        undelivered,
        ..
    } = &err
    else {
        panic!("expected FuelExhausted, got {err:?}");
    };
    assert_eq!(*fuel, 400);
    assert_eq!(*executed, 400);
    assert!(*queued_events > 0, "spinners keep events queued");
    let names: Vec<&str> = threads.iter().map(|t| t.name.as_str()).collect();
    assert!(
        names.contains(&"rx0") && names.contains(&"rx1"),
        "{names:?}"
    );
    assert!(!names.contains(&"tx"), "finished thread must not appear");
    assert!(
        threads.iter().any(|t| matches!(
            &t.on,
            BlockedOn::Op { desc } if desc.contains("NetPoll")
        )),
        "a spinner should be mid-poll: {threads:?}"
    );
    assert_eq!(*undelivered, vec![(1, 1)], "the ignored mailbox");
    let msg = err.to_string();
    assert!(msg.contains("fuel exhausted") && msg.contains("`rx0`"));
}

#[test]
fn fuel_exhaustion_is_deterministic() {
    let snapshot = |seed| {
        let p = platform(seed);
        seed_livelock(&p);
        p.set_fuel(Some(300));
        p.try_run().expect_err("livelock")
    };
    assert_eq!(snapshot(5), snapshot(5), "same seed + fuel → same error");
}

#[test]
#[should_panic(expected = "fuel exhausted")]
fn run_panics_on_fuel_exhaustion() {
    let p = platform(12);
    seed_livelock(&p);
    p.set_fuel(Some(100));
    let _ = p.run();
}

#[test]
fn abba_deadlock_is_typed_and_names_both_threads() {
    let p = platform(13);
    let l0 = p.lock_create(LockKind::Ticket);
    let l1 = p.lock_create(LockKind::Ticket);
    for (name, first, second) in [("fwd", l0, l1), ("rev", l1, l0)] {
        let p2 = p.clone();
        p.spawn(
            desc(name, if name == "fwd" { 0 } else { 1 }),
            Box::new(move || {
                let t1 = p2.lock_acquire(first, PathClass::Main);
                p2.compute(1_000);
                let t2 = p2.lock_acquire(second, PathClass::Main); // ABBA: never granted
                p2.lock_release(second, PathClass::Main, t2);
                p2.lock_release(first, PathClass::Main, t1);
            }),
        );
    }
    let err = p.try_run().expect_err("ABBA must deadlock");
    let SimError::Deadlock { threads, locks, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    let names: Vec<&str> = threads.iter().map(|t| t.name.as_str()).collect();
    assert!(
        names.contains(&"fwd") && names.contains(&"rev"),
        "{names:?}"
    );
    assert!(
        threads
            .iter()
            .all(|t| matches!(t.on, BlockedOn::Lock { .. })),
        "both parked in lock queues: {threads:?}"
    );
    assert_eq!(locks.len(), 2, "both locks non-idle: {locks:?}");
    assert!(locks.iter().all(|l| l.waiters.len() == 1));
    let msg = err.to_string();
    assert!(msg.contains("deadlock") && msg.contains("`fwd`") && msg.contains("`rev`"));
}

#[test]
fn fuel_does_not_perturb_a_completing_run() {
    let run = |fuel: Option<u64>| {
        let p = platform(21);
        if let Some(f) = fuel {
            p.set_fuel(Some(f));
        }
        let lock = p.lock_create(LockKind::Mutex);
        for i in 0..3u32 {
            let p2 = p.clone();
            p.spawn(
                desc(&format!("t{i}"), i),
                Box::new(move || {
                    for _ in 0..10 {
                        let tok = p2.lock_acquire(lock, PathClass::Main);
                        p2.compute(500);
                        p2.lock_release(lock, PathClass::Main, tok);
                    }
                }),
            );
        }
        p.try_run().expect("bounded but sufficient fuel")
    };
    let unbounded = run(None);
    let bounded = run(Some(1_000_000));
    assert_eq!(unbounded.sched_trace_hash, bounded.sched_trace_hash);
    assert_eq!(unbounded.events, bounded.events);
    assert!(unbounded.events > 0, "events counter must be reported");
}
