//! End-to-end tests of the virtual-time platform: cooperative scheduling,
//! lock arbitration, mailbox timing, determinism.

use mtmpi_locks::PathClass;
use mtmpi_metrics::BiasAnalysis;
use mtmpi_net::NetModel;
use mtmpi_sim::{LockKind, LockModelParams, Platform, ThreadDesc, VirtualPlatform};
use mtmpi_topology::presets::nehalem_cluster_scaled;
use mtmpi_topology::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn platform(seed: u64) -> Arc<VirtualPlatform> {
    Arc::new(VirtualPlatform::new(
        nehalem_cluster_scaled(2),
        NetModel::qdr(),
        LockModelParams::default(),
        seed,
    ))
}

fn desc(name: &str, core: u32) -> ThreadDesc {
    ThreadDesc {
        name: name.into(),
        node: 0,
        core: CoreId(core),
    }
}

#[test]
fn compute_advances_virtual_time() {
    let p = platform(1);
    let p2 = p.clone();
    p.spawn(
        desc("t0", 0),
        Box::new(move || {
            assert_eq!(p2.now_ns(), 0);
            p2.compute(12_345);
            assert_eq!(p2.now_ns(), 12_345);
        }),
    );
    let report = p.run();
    assert_eq!(report.end_ns, 12_345);
}

#[test]
fn threads_interleave_in_time_order() {
    let p = platform(2);
    let order = Arc::new(parking_lot::Mutex::new(Vec::<(u64, u32)>::new()));
    let lock = p.lock_create(LockKind::Ticket);
    for i in 0..3u32 {
        let p2 = p.clone();
        let order = order.clone();
        p.spawn(
            desc(&format!("t{i}"), i),
            Box::new(move || {
                // Thread i starts working at t = i * 100.
                p2.compute(u64::from(i) * 100);
                let tok = p2.lock_acquire(lock, PathClass::Main);
                order.lock().push((p2.now_ns(), i));
                p2.compute(1_000); // hold the lock for 1 µs
                p2.lock_release(lock, PathClass::Main, tok);
            }),
        );
    }
    p.run();
    let order = order.lock();
    let ids: Vec<u32> = order.iter().map(|&(_, i)| i).collect();
    assert_eq!(ids, vec![0, 1, 2], "FIFO arrival order under ticket lock");
    // Each holder entered after the previous released (1 µs holds).
    assert!(order[1].0 >= order[0].0 + 1_000);
    assert!(order[2].0 >= order[1].0 + 1_000);
}

#[test]
fn mailbox_delivers_after_network_delay() {
    let p = platform(3);
    let src = p.register_endpoint(0);
    let dst = p.register_endpoint(1);
    let got_at = Arc::new(AtomicU64::new(0));
    {
        let p2 = p.clone();
        p.spawn(
            desc("sender", 0),
            Box::new(move || {
                p2.compute(500);
                p2.net_send(src, dst, 1024, Box::new(7u32));
            }),
        );
    }
    {
        let p2 = p.clone();
        let got_at = got_at.clone();
        p.spawn(
            desc("receiver", 4),
            Box::new(move || {
                loop {
                    let pkts = p2.net_poll(dst);
                    if let Some(pkt) = pkts.into_iter().next() {
                        assert_eq!(*pkt.downcast::<u32>().expect("payload type"), 7);
                        got_at.store(p2.now_ns(), Ordering::Relaxed);
                        return;
                    }
                    p2.compute(200); // poll every 200ns
                }
            }),
        );
    }
    p.run();
    let t = got_at.load(Ordering::Relaxed);
    let wire = NetModel::qdr().timing(false, 1024).total_ns();
    assert!(
        t >= 500 + wire,
        "message visible only after the wire time: got {t}, wire {wire}"
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let p = platform(42);
        let lock = p.lock_create(LockKind::Mutex);
        for i in 0..4u32 {
            let p2 = p.clone();
            p.spawn(
                desc(&format!("t{i}"), i * 2), // cores 0,2,4,6: both sockets
                Box::new(move || {
                    for _ in 0..200 {
                        let tok = p2.lock_acquire(lock, PathClass::Main);
                        p2.compute(300);
                        p2.lock_release(lock, PathClass::Main, tok);
                        p2.compute(100);
                    }
                }),
            );
        }
        let r = p.run();
        let trace = &r.lock_traces[0];
        let owners: Vec<u32> = trace.records().iter().map(|r| r.owner).collect();
        (r.end_ns, owners)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical runs");
}

#[test]
fn mutex_is_biased_ticket_is_not() {
    // 8 threads one per core hammer the CS — the §4.3 experiment in
    // miniature. Think times vary per thread and per iteration (as the
    // MPI runtime's do), so no fixed alternation pattern can form.
    let run = |kind: LockKind| {
        let p = platform(7);
        let lock = p.lock_create(kind);
        for i in 0..8u32 {
            let p2 = p.clone();
            p.spawn(
                desc(&format!("t{i}"), i),
                Box::new(move || {
                    for k in 0..400u64 {
                        let tok = p2.lock_acquire(lock, PathClass::Main);
                        p2.compute(250 + (p2.rng_u64() % 200));
                        p2.lock_release(lock, PathClass::Main, tok);
                        // Mostly quick returns; occasionally a long stall
                        // (window refill), like the throughput benchmark.
                        let think = if k % 16 == 15 {
                            5_000
                        } else {
                            100 + (p2.rng_u64() % 300)
                        };
                        p2.compute(think);
                    }
                }),
            );
        }
        let r = p.run();
        BiasAnalysis::from_trace(&r.lock_traces[0])
    };
    let mutex = run(LockKind::Mutex);
    let ticket = run(LockKind::Ticket);
    let mf = mutex.factors().expect("mutex contended");
    let tf = ticket.factors().expect("ticket contended");
    assert!(
        mf.core > 1.4,
        "mutex must re-elect the same thread more than fair: {mf:?}"
    );
    assert!(
        mf.socket > 1.05,
        "mutex must keep the lock on-socket more than fair: {mf:?}"
    );
    assert!(
        tf.core < 0.5,
        "FIFO almost never re-elects the same thread immediately: {tf:?}"
    );
    assert!(
        mf.core > 2.0 * tf.core.max(0.01),
        "mutex core bias must dominate ticket's: {mf:?} vs {tf:?}"
    );
}

#[test]
fn ticket_fairness_in_acquisition_counts() {
    let p = platform(11);
    let lock = p.lock_create(LockKind::Ticket);
    for i in 0..4u32 {
        let p2 = p.clone();
        p.spawn(
            desc(&format!("t{i}"), i),
            Box::new(move || {
                for _ in 0..300 {
                    let tok = p2.lock_acquire(lock, PathClass::Main);
                    p2.compute(200);
                    p2.lock_release(lock, PathClass::Main, tok);
                    p2.compute(50);
                }
            }),
        );
    }
    let r = p.run();
    let trace = &r.lock_traces[0];
    assert_eq!(trace.len(), 1200);
    assert!(
        trace.jain_index() > 0.99,
        "ticket must be fair: {}",
        trace.jain_index()
    );
}

#[test]
fn mutex_monopolizes_under_asymmetric_return() {
    // One "owner-like" thread returns to the lock immediately; others are
    // slow. The mutex should give the fast returner long runs; Jain drops.
    let run = |kind: LockKind| {
        let p = platform(13);
        let lock = p.lock_create(kind);
        for i in 0..4u32 {
            let p2 = p.clone();
            let think = if i == 0 { 50 } else { 600 };
            p.spawn(
                desc(&format!("t{i}"), i),
                Box::new(move || {
                    for _ in 0..400 {
                        let tok = p2.lock_acquire(lock, PathClass::Main);
                        p2.compute(300);
                        p2.lock_release(lock, PathClass::Main, tok);
                        p2.compute(think);
                    }
                }),
            );
        }
        let r = p.run();
        r.lock_traces[0].longest_monopoly()
    };
    let mutex_run = run(LockKind::Mutex);
    let ticket_run = run(LockKind::Ticket);
    assert!(
        mutex_run > ticket_run,
        "mutex monopoly run {mutex_run} must exceed ticket {ticket_run}"
    );
    assert!(
        mutex_run >= 3,
        "fast returner should chain acquisitions: {mutex_run}"
    );
}

#[test]
fn priority_class_is_honored() {
    // Three progress-loop pollers keep the lock saturated; a main-path
    // worker with long think times must jump the queue under the priority
    // lock, so its mean wait is far shorter than under the plain ticket
    // lock (where it queues behind all three pollers every time).
    let run = |kind: LockKind| {
        let p = platform(17);
        let lock = p.lock_create(kind);
        for i in 0..3u32 {
            let p2 = p.clone();
            p.spawn(
                desc(&format!("poller{i}"), i + 1),
                Box::new(move || {
                    for _ in 0..2_000 {
                        let tok = p2.lock_acquire(lock, PathClass::Progress);
                        p2.compute(300);
                        p2.lock_release(lock, PathClass::Progress, tok);
                        p2.compute(5);
                    }
                }),
            );
        }
        let p2 = p.clone();
        p.spawn(
            desc("worker", 0),
            Box::new(move || {
                for _ in 0..300 {
                    let tok = p2.lock_acquire(lock, PathClass::Main);
                    p2.compute(300);
                    p2.lock_release(lock, PathClass::Main, tok);
                    p2.compute(800);
                }
            }),
        );
        let r = p.run();
        // Worker is tid 3 (spawned last).
        let waits: Vec<f64> = r.lock_traces[0]
            .records()
            .iter()
            .filter(|rec| rec.owner == 3)
            .map(|rec| rec.wait_ns as f64)
            .collect();
        assert_eq!(waits.len(), 300);
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let prio_wait = run(LockKind::Priority);
    let ticket_wait = run(LockKind::Ticket);
    assert!(
        prio_wait * 1.5 < ticket_wait,
        "main path must wait much less under priority: {prio_wait} vs ticket {ticket_wait}"
    );
}

#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_is_detected() {
    let p = platform(23);
    let lock = p.lock_create(LockKind::Ticket);
    let p2 = p.clone();
    p.spawn(
        desc("selfdead", 0),
        Box::new(move || {
            let _t1 = p2.lock_acquire(lock, PathClass::Main);
            // Re-acquiring a non-reentrant lock we hold: deadlock.
            let _t2 = p2.lock_acquire(lock, PathClass::Main);
        }),
    );
    p.run();
}

#[test]
fn nic_serializes_senders() {
    // Two senders on the same node share the NIC: 2 x 64KB back to back
    // must take at least 2 x inject time.
    let p = platform(29);
    let a = p.register_endpoint(0);
    let b = p.register_endpoint(0);
    let dst = p.register_endpoint(1);
    for (name, ep, core) in [("s0", a, 0u32), ("s1", b, 1)] {
        let p2 = p.clone();
        p.spawn(
            desc(name, core),
            Box::new(move || {
                p2.net_send(ep, dst, 65536, Box::new(0u8));
            }),
        );
    }
    let got = Arc::new(AtomicU64::new(0));
    {
        let p2 = p.clone();
        let got = got.clone();
        p.spawn(
            desc("recv", 4),
            Box::new(move || {
                let mut n = 0;
                while n < 2 {
                    n += p2.net_poll(dst).len();
                    p2.compute(500);
                }
                got.store(p2.now_ns(), Ordering::Relaxed);
            }),
        );
    }
    p.run();
    let m = NetModel::qdr();
    let t = m.timing(false, 65536);
    let both_arrived = got.load(Ordering::Relaxed);
    assert!(
        both_arrived >= 2 * t.inject_ns + t.wire_ns,
        "NIC serialization: {both_arrived} < {}",
        2 * t.inject_ns + t.wire_ns
    );
}
