//! Quantum-stepped execution ([`VirtualPlatform::start`] +
//! [`RunHandle::step`]): the serve-layer contract that any quantum
//! series replays the monolithic run byte-identically, that a parked
//! handle resumes on a different OS thread, and that dropping a handle
//! mid-run cancels cleanly.

use mtmpi_locks::PathClass;
use mtmpi_net::NetModel;
use mtmpi_sim::{
    LockKind, LockModelParams, Platform, RunHandle, SimError, StepOutcome, ThreadDesc,
    VirtualPlatform,
};
use mtmpi_topology::presets::nehalem_cluster_scaled;
use mtmpi_topology::CoreId;
use std::sync::Arc;

fn platform(seed: u64) -> Arc<VirtualPlatform> {
    Arc::new(VirtualPlatform::new(
        nehalem_cluster_scaled(2),
        NetModel::qdr(),
        LockModelParams::default(),
        seed,
    ))
}

fn desc(name: &str, core: u32) -> ThreadDesc {
    ThreadDesc {
        name: name.into(),
        node: 0,
        core: CoreId(core),
    }
}

/// A small lock-contending workload: enough events to cross several
/// quantum boundaries, deterministic under a fixed seed.
fn spawn_workload(p: &Arc<VirtualPlatform>) {
    let lock = p.lock_create(LockKind::Ticket);
    for i in 0..4u32 {
        let p2 = p.clone();
        p.spawn(
            desc(&format!("t{i}"), i),
            Box::new(move || {
                for round in 0..8u64 {
                    p2.compute(100 + u64::from(i) * 10 + round);
                    let tok = p2.lock_acquire(lock, PathClass::Main);
                    p2.compute(500);
                    p2.lock_release(lock, PathClass::Main, tok);
                    p2.yield_now();
                }
            }),
        );
    }
}

#[test]
fn quantum_series_replays_monolithic_run() {
    let p = platform(0xA11CE);
    spawn_workload(&p);
    let reference = p.run();
    assert!(reference.events > 10, "workload too small to step");

    for quantum in [1u64, 3, 7, 64] {
        let p = platform(0xA11CE);
        spawn_workload(&p);
        let mut h = p.start();
        let mut grants = 0u64;
        while let StepOutcome::Pending = h.step(quantum).expect("no deadlock") {
            grants += 1;
        }
        let report = h.finish();
        assert_eq!(report.events, reference.events, "quantum {quantum}");
        assert_eq!(report.end_ns, reference.end_ns, "quantum {quantum}");
        assert_eq!(
            report.sched_trace_hash, reference.sched_trace_hash,
            "quantum {quantum}"
        );
        // ceil(events / quantum) full-or-partial quanta minus the final
        // one, whose budget check never fires before Done.
        assert_eq!(grants, reference.events.div_ceil(quantum) - 1);
    }
}

#[test]
fn handle_resumes_on_a_different_os_thread() {
    let p = platform(0xBEE);
    spawn_workload(&p);
    let reference = p.run();

    let p = platform(0xBEE);
    spawn_workload(&p);
    let mut h = p.start();
    // Park/resume across real OS threads: each hop moves the handle to a
    // fresh thread that steps one quantum, exactly what a serve worker
    // pool does.
    let report = loop {
        let (done, h2) = std::thread::spawn(move || {
            let mut h = h;
            let done = matches!(h.step(50).expect("no deadlock"), StepOutcome::Done);
            (done, h)
        })
        .join()
        .expect("stepper thread");
        h = h2;
        if done {
            break h.finish();
        }
    };
    assert_eq!(report.sched_trace_hash, reference.sched_trace_hash);
    assert_eq!(report.end_ns, reference.end_ns);
}

#[test]
fn drop_mid_run_cancels_workers() {
    let p = platform(0xD0);
    spawn_workload(&p);
    let mut h = p.start();
    assert_eq!(h.step(5).expect("no deadlock"), StepOutcome::Pending);
    assert!(!h.is_finished());
    assert!(h.events() >= 5);
    // Dropping the half-finished run must hang up and join every worker
    // without panicking the test process.
    drop(h);
}

#[test]
fn fuel_error_surfaces_through_step() {
    let p = platform(0xF0E1);
    spawn_workload(&p);
    p.set_fuel(Some(10));
    let mut h = p.start();
    let mut last = Ok(StepOutcome::Pending);
    for _ in 0..64 {
        last = h.step(4);
        if last.is_err() {
            break;
        }
    }
    match last {
        Err(SimError::FuelExhausted { fuel, executed, .. }) => {
            assert_eq!(fuel, 10);
            assert_eq!(executed, 10);
        }
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

#[test]
fn run_handle_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<RunHandle>();
}
