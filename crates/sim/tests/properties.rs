//! Property tests of the virtual platform: determinism and conservation
//! invariants under randomized workloads.

use mtmpi_locks::PathClass;
use mtmpi_net::NetModel;
use mtmpi_sim::{LockKind, LockModelParams, Platform, ThreadDesc, VirtualPlatform};
use mtmpi_topology::presets::nehalem_cluster_scaled;
use mtmpi_topology::CoreId;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized workload description: per thread, a list of
/// (compute_ns, hold_ns) critical sections.
fn run_workload(kind: LockKind, seed: u64, plan: &[Vec<(u16, u16)>]) -> (u64, Vec<u32>) {
    let p = Arc::new(VirtualPlatform::new(
        nehalem_cluster_scaled(1),
        NetModel::qdr(),
        LockModelParams::default(),
        seed,
    ));
    let lock = p.lock_create(kind);
    for (i, ops) in plan.iter().enumerate() {
        let p2 = p.clone();
        let ops = ops.clone();
        p.spawn(
            ThreadDesc {
                name: format!("t{i}"),
                node: 0,
                core: CoreId((i % 8) as u32),
            },
            Box::new(move || {
                for (think, hold) in ops {
                    p2.compute(u64::from(think));
                    let tok = p2.lock_acquire(lock, PathClass::Main);
                    p2.compute(u64::from(hold));
                    p2.lock_release(lock, PathClass::Main, tok);
                }
            }),
        );
    }
    let report = p.run();
    let owners: Vec<u32> = report.lock_traces[0]
        .records()
        .iter()
        .map(|r| r.owner)
        .collect();
    (report.end_ns, owners)
}

fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u16, u16)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u16..2000, 1u16..2000), 1..25),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Same seed + same plan → bit-identical schedule, for every lock kind.
    #[test]
    fn deterministic_under_random_plans(plan in plan_strategy(), seed in 0u64..1000) {
        for kind in [LockKind::Mutex, LockKind::Ticket, LockKind::Priority] {
            let a = run_workload(kind, seed, &plan);
            let b = run_workload(kind, seed, &plan);
            prop_assert_eq!(&a, &b, "nondeterminism under {:?}", kind);
        }
    }

    /// Every planned acquisition happens exactly once (conservation), and
    /// virtual time covers at least the serial critical-section time.
    #[test]
    fn conservation_and_lower_bound(plan in plan_strategy(), seed in 0u64..1000) {
        let total_acqs: usize = plan.iter().map(Vec::len).sum();
        let serial_hold: u64 = plan
            .iter()
            .flat_map(|ops| ops.iter().map(|&(_, h)| u64::from(h)))
            .sum();
        let (end, owners) = run_workload(LockKind::Ticket, seed, &plan);
        prop_assert_eq!(owners.len(), total_acqs);
        prop_assert!(end >= serial_hold, "end {} < serial hold {}", end, serial_hold);
        // Per-thread counts match the plan.
        for (i, ops) in plan.iter().enumerate() {
            let got = owners.iter().filter(|&&o| o == i as u32).count();
            prop_assert_eq!(got, ops.len(), "thread {}", i);
        }
    }

    /// The ticket schedule never grants the lock while it is held:
    /// acquisition timestamps are non-decreasing and separated by at
    /// least the hold time of the previous owner... (weak form: sorted).
    #[test]
    fn grant_times_sorted(plan in plan_strategy(), seed in 0u64..100) {
        let p = Arc::new(VirtualPlatform::new(
            nehalem_cluster_scaled(1),
            NetModel::qdr(),
            LockModelParams::default(),
            seed,
        ));
        let lock = p.lock_create(LockKind::Ticket);
        for (i, ops) in plan.iter().enumerate() {
            let p2 = p.clone();
            let ops = ops.clone();
            p.spawn(
                ThreadDesc { name: format!("t{i}"), node: 0, core: CoreId((i % 8) as u32) },
                Box::new(move || {
                    for (think, hold) in ops {
                        p2.compute(u64::from(think));
                        let tok = p2.lock_acquire(lock, PathClass::Main);
                        p2.compute(u64::from(hold));
                        p2.lock_release(lock, PathClass::Main, tok);
                    }
                }),
            );
        }
        let report = p.run();
        let times: Vec<u64> = report.lock_traces[0].records().iter().map(|r| r.t_ns).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "grants out of order");
    }
}
