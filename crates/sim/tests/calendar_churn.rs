//! Hold-model churn regression for the calendar queue: pop the minimum,
//! push a successor on a tie-heavy grid — the exact access pattern of
//! the steady-state scheduler (and of `fig_scale`'s microbench), which
//! the randomized interleaving property test does not generate because
//! its push times are independent of the pop frontier.

use mtmpi_sim::{CalendarQueue, Keyed};
use std::collections::BinaryHeap;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct It {
    t: u64,
    seq: u64,
}

impl Keyed for It {
    fn time(&self) -> u64 {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Rev(It);
impl Ord for Rev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.t, other.0.seq).cmp(&(self.0.t, self.0.seq))
    }
}
impl PartialOrd for Rev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const WINDOW_NS: u64 = 512 * 1024;

fn delta(rng: &mut u64) -> u64 {
    let r = splitmix64(rng);
    if r.is_multiple_of(64) {
        (2 + (r >> 8) % 8) * WINDOW_NS
    } else {
        ((r >> 8) % 2048) * 256
    }
}

/// Pop-successor churn must match the reference heap item for item.
#[test]
fn hold_model_churn_matches_reference_heap() {
    for seed in [8u64, 64, 0xFEED] {
        let mut cal: CalendarQueue<It> = CalendarQueue::new();
        let mut heap: BinaryHeap<Rev> = BinaryHeap::new();
        let mut rng_c = seed ^ 0x5EED;
        let mut rng_h = seed ^ 0x5EED;
        let mut seq = 0u64;
        for _ in 0..4096u64 {
            let (dc, dh) = (delta(&mut rng_c), delta(&mut rng_h));
            assert_eq!(dc, dh);
            cal.push(It { t: dc, seq });
            heap.push(Rev(It { t: dc, seq }));
            seq += 1;
        }
        for step in 0..200_000u64 {
            let a = cal.pop().expect("calendar never empties");
            let b = heap.pop().expect("heap never empties").0;
            assert_eq!(
                a, b,
                "seed {seed}: first divergence at step {step}: calendar popped \
                 (t={}, seq={}), reference popped (t={}, seq={})",
                a.t, a.seq, b.t, b.seq
            );
            let (dc, dh) = (delta(&mut rng_c), delta(&mut rng_h));
            assert_eq!(dc, dh);
            cal.push(It { t: a.t + dc, seq });
            heap.push(Rev(It { t: b.t + dh, seq }));
            seq += 1;
        }
    }
}
