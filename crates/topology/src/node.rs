//! Single-node topology: sockets, cores, caches.

use serde::{Deserialize, Serialize};

/// Index of a core within a node (`0..sockets * cores_per_socket`).
///
/// Cores are numbered socket-major: core `c` lives on socket
/// `c / cores_per_socket`. This matches the binding convention used in the
/// paper ("we bind the first four threads to cores on the first socket and
/// the rest to cores on the second", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u32);

/// Index of a socket within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub u32);

/// Description of one compute node.
///
/// The defaults elsewhere in the workspace use [`crate::presets::nehalem_node`],
/// which encodes Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTopology {
    /// Number of CPU sockets (NUMA domains) on the node.
    pub sockets: u32,
    /// Number of physical cores per socket (SMT disabled, as in the paper).
    pub cores_per_socket: u32,
    /// Clock frequency in MHz (informational; virtual-time costs are given
    /// in nanoseconds directly).
    pub clock_mhz: u32,
    /// Per-core L2 size in bytes.
    pub l2_bytes: u64,
    /// Per-socket shared L3 size in bytes.
    pub l3_bytes: u64,
    /// Human-readable processor name.
    pub processor: String,
}

impl NodeTopology {
    /// Create a topology with the given socket/core counts and generic
    /// cache parameters.
    pub fn new(sockets: u32, cores_per_socket: u32) -> Self {
        assert!(
            sockets > 0 && cores_per_socket > 0,
            "topology must have cores"
        );
        Self {
            sockets,
            cores_per_socket,
            clock_mhz: 2600,
            l2_bytes: 256 * 1024,
            l3_bytes: 8 * 1024 * 1024,
            processor: "generic".to_owned(),
        }
    }

    /// Total number of cores on the node.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// The socket a core belongs to.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(core.0 < self.total_cores(), "core {core:?} out of range");
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Whether two cores share a socket (and therefore the L3 cache).
    pub fn same_socket(&self, a: CoreId, b: CoreId) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// Iterate over all core ids, socket-major.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.total_cores()).map(CoreId)
    }

    /// Cores belonging to one socket.
    pub fn cores_of(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        assert!(socket.0 < self.sockets, "socket {socket:?} out of range");
        let base = socket.0 * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(CoreId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_major_numbering() {
        let n = NodeTopology::new(2, 4);
        assert_eq!(n.total_cores(), 8);
        assert_eq!(n.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(n.socket_of(CoreId(3)), SocketId(0));
        assert_eq!(n.socket_of(CoreId(4)), SocketId(1));
        assert_eq!(n.socket_of(CoreId(7)), SocketId(1));
    }

    #[test]
    fn same_socket_relation() {
        let n = NodeTopology::new(2, 4);
        assert!(n.same_socket(CoreId(0), CoreId(3)));
        assert!(!n.same_socket(CoreId(3), CoreId(4)));
        // reflexive
        for c in n.cores() {
            assert!(n.same_socket(c, c));
        }
    }

    #[test]
    fn cores_of_socket() {
        let n = NodeTopology::new(2, 4);
        let s1: Vec<_> = n.cores_of(SocketId(1)).collect();
        assert_eq!(s1, vec![CoreId(4), CoreId(5), CoreId(6), CoreId(7)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_out_of_range_panics() {
        let n = NodeTopology::new(2, 4);
        let _ = n.socket_of(CoreId(8));
    }
}
