//! Memory-hierarchy distances and lock hand-off latencies.

use crate::node::{CoreId, NodeTopology};
use serde::{Deserialize, Serialize};

/// Cache distance between the releasing core and a prospective next owner of
/// a lock's cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// Same core: the line is already in the local L1/L2; the previous owner
    /// re-acquiring its own lock pays almost nothing.
    SameCore,
    /// Different core, same socket: line moves through the shared L3.
    SameSocket,
    /// Different socket: line crosses the interconnect (QPI on Nehalem).
    CrossSocket,
}

/// Hand-off latencies (paper §4.2, footnote 1: "the elapsed time between
/// when a lock holder marks the lock as free and when the next owner
/// detects it"), in nanoseconds, for each [`Distance`].
///
/// The ratio between these values — not their absolute magnitude — drives
/// the arbitration bias: a compare-and-swap race is won by whoever observes
/// the freed line first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoffLatencies {
    /// Same-core re-acquire (line in local cache).
    pub same_core_ns: u64,
    /// Cross-core, same-socket transfer via L3.
    pub same_socket_ns: u64,
    /// Cross-socket transfer via the inter-socket link.
    pub cross_socket_ns: u64,
}

impl HandoffLatencies {
    /// Latencies measured on Nehalem-class hardware (order of magnitude:
    /// L1 hit ~1.3 ns, L3 hit ~15 ns line transfer ~25 ns, cross-socket
    /// cache-to-cache ~120 ns).
    pub const NEHALEM: Self = Self {
        same_core_ns: 5,
        same_socket_ns: 25,
        cross_socket_ns: 120,
    };

    /// A uniform-latency machine (no NUMA effect); useful as a control in
    /// bias experiments.
    pub const UNIFORM: Self = Self {
        same_core_ns: 25,
        same_socket_ns: 25,
        cross_socket_ns: 25,
    };

    /// Latency for a given distance.
    pub fn for_distance(&self, d: Distance) -> u64 {
        match d {
            Distance::SameCore => self.same_core_ns,
            Distance::SameSocket => self.same_socket_ns,
            Distance::CrossSocket => self.cross_socket_ns,
        }
    }

    /// Hand-off latency between two cores of `node`.
    pub fn between(&self, node: &NodeTopology, from: CoreId, to: CoreId) -> u64 {
        self.for_distance(distance(node, from, to))
    }
}

impl Default for HandoffLatencies {
    fn default() -> Self {
        Self::NEHALEM
    }
}

/// Classify the cache distance between two cores.
pub fn distance(node: &NodeTopology, from: CoreId, to: CoreId) -> Distance {
    if from == to {
        Distance::SameCore
    } else if node.same_socket(from, to) {
        Distance::SameSocket
    } else {
        Distance::CrossSocket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_dual_socket() {
        let n = NodeTopology::new(2, 4);
        assert_eq!(distance(&n, CoreId(2), CoreId(2)), Distance::SameCore);
        assert_eq!(distance(&n, CoreId(2), CoreId(0)), Distance::SameSocket);
        assert_eq!(distance(&n, CoreId(2), CoreId(5)), Distance::CrossSocket);
    }

    #[test]
    fn nehalem_latencies_are_monotone() {
        let l = HandoffLatencies::NEHALEM;
        assert!(l.same_core_ns < l.same_socket_ns);
        assert!(l.same_socket_ns < l.cross_socket_ns);
    }

    #[test]
    fn between_uses_distance() {
        let n = NodeTopology::new(2, 4);
        let l = HandoffLatencies::NEHALEM;
        assert_eq!(l.between(&n, CoreId(0), CoreId(0)), l.same_core_ns);
        assert_eq!(l.between(&n, CoreId(0), CoreId(1)), l.same_socket_ns);
        assert_eq!(l.between(&n, CoreId(0), CoreId(4)), l.cross_socket_ns);
    }

    #[test]
    fn uniform_control_has_no_numa() {
        let n = NodeTopology::new(2, 4);
        let l = HandoffLatencies::UNIFORM;
        assert_eq!(
            l.between(&n, CoreId(0), CoreId(0)),
            l.between(&n, CoreId(0), CoreId(7))
        );
    }
}
