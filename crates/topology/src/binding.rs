//! Thread-to-core binding policies.

use crate::node::{CoreId, NodeTopology};
use serde::{Deserialize, Serialize};

/// How the threads of the processes on one node are pinned to cores.
///
/// The paper contrasts *compact* (fill a socket before spilling to the
/// next — threads share caches, short hand-offs) with *scatter* (round-robin
/// across sockets — every neighbour hand-off crosses the QPI link), §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BindingPolicy {
    /// Fill cores socket by socket: t0..t3 → socket 0, t4..t7 → socket 1.
    Compact,
    /// Round-robin over sockets: t0 → s0c0, t1 → s1c0, t2 → s0c1, …
    Scatter,
}

/// A concrete binding: thread index → core, for `nthreads` threads on `node`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    cores: Vec<CoreId>,
}

impl Binding {
    /// Compute the binding of `nthreads` threads under `policy`.
    ///
    /// Threads beyond the core count wrap around (oversubscription), which
    /// the paper never exercises but the simulator tolerates.
    pub fn new(node: &NodeTopology, policy: BindingPolicy, nthreads: u32) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        let total = node.total_cores();
        let cores = (0..nthreads)
            .map(|t| {
                let slot = t % total;
                let core = match policy {
                    BindingPolicy::Compact => slot,
                    BindingPolicy::Scatter => {
                        let socket = slot % node.sockets;
                        let within = slot / node.sockets;
                        socket * node.cores_per_socket + within
                    }
                };
                CoreId(core)
            })
            .collect();
        Self { cores }
    }

    /// Build a binding from an explicit core list (for tests and custom
    /// experiments).
    pub fn explicit(cores: Vec<CoreId>) -> Self {
        assert!(!cores.is_empty(), "need at least one thread");
        Self { cores }
    }

    /// Core of thread `t`.
    pub fn core_of(&self, t: usize) -> CoreId {
        self.cores[t]
    }

    /// Number of bound threads.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the binding is empty (never true for constructed bindings).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// All cores, in thread order.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeTopology {
        NodeTopology::new(2, 4)
    }

    #[test]
    fn compact_fills_first_socket_first() {
        let b = Binding::new(&node(), BindingPolicy::Compact, 8);
        let cores: Vec<u32> = b.cores().iter().map(|c| c.0).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn scatter_alternates_sockets() {
        let b = Binding::new(&node(), BindingPolicy::Scatter, 4);
        let n = node();
        let sockets: Vec<u32> = b.cores().iter().map(|&c| n.socket_of(c).0).collect();
        assert_eq!(sockets, vec![0, 1, 0, 1]);
    }

    #[test]
    fn scatter_two_threads_use_both_sockets() {
        let n = node();
        let b = Binding::new(&n, BindingPolicy::Scatter, 2);
        assert!(!n.same_socket(b.core_of(0), b.core_of(1)));
    }

    #[test]
    fn compact_two_threads_share_socket() {
        let n = node();
        let b = Binding::new(&n, BindingPolicy::Compact, 2);
        assert!(n.same_socket(b.core_of(0), b.core_of(1)));
    }

    #[test]
    fn oversubscription_wraps() {
        let b = Binding::new(&node(), BindingPolicy::Compact, 10);
        assert_eq!(b.core_of(8), b.core_of(0));
        assert_eq!(b.core_of(9), b.core_of(1));
    }

    #[test]
    fn scatter_uses_distinct_cores_up_to_total() {
        let b = Binding::new(&node(), BindingPolicy::Scatter, 8);
        let mut cores: Vec<u32> = b.cores().iter().map(|c| c.0).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 8, "all 8 cores used exactly once");
    }
}
