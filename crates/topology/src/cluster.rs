//! Multi-node cluster topology.

use crate::latency::HandoffLatencies;
use crate::node::NodeTopology;
use serde::{Deserialize, Serialize};

/// A cluster of identical nodes connected by one interconnect.
///
/// Node indices are `0..nodes`. Process placement (ranks → nodes) is decided
/// by the runtime layer; this type only answers "is this pair of ranks on
/// the same node" style questions through the node count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Number of nodes.
    pub nodes: u32,
    /// Per-node topology (all nodes identical, as on the paper's testbed).
    pub node: NodeTopology,
    /// Lock hand-off latency model for every node.
    pub handoff: HandoffLatencies,
    /// Interconnect name (informational).
    pub interconnect: String,
}

impl ClusterTopology {
    /// A cluster of `nodes` identical `node`s with Nehalem hand-off costs.
    pub fn new(nodes: u32, node: NodeTopology) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            nodes,
            node,
            handoff: HandoffLatencies::NEHALEM,
            interconnect: "model-QDR".to_owned(),
        }
    }

    /// Total core count across the cluster.
    pub fn total_cores(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.node.total_cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cores() {
        let c = ClusterTopology::new(310, NodeTopology::new(2, 4));
        assert_eq!(c.total_cores(), 2480);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterTopology::new(0, NodeTopology::new(2, 4));
    }
}
