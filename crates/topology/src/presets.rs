//! Canned topologies, including the paper's testbed (Table 1).

use crate::cluster::ClusterTopology;
use crate::latency::HandoffLatencies;
use crate::node::NodeTopology;

/// The paper's compute node (Table 1): dual-socket Intel Nehalem Xeon E5540,
/// 4 cores per socket, SMT disabled, 2.6 GHz, 256 KB L2, 8 MB L3.
pub fn nehalem_node() -> NodeTopology {
    NodeTopology {
        sockets: 2,
        cores_per_socket: 4,
        clock_mhz: 2600,
        l2_bytes: 256 * 1024,
        l3_bytes: 8192 * 1024,
        processor: "Xeon E5540 (Nehalem)".to_owned(),
    }
}

/// The paper's cluster (Table 1): 310 Nehalem nodes on Mellanox QDR.
pub fn nehalem_cluster() -> ClusterTopology {
    let mut c = ClusterTopology::new(310, nehalem_node());
    c.interconnect = "Mellanox InfiniBand QDR (model)".to_owned();
    c
}

/// A smaller cluster with the paper's node type, sized for host-feasible
/// virtual-time experiments. The per-node contention behaviour — which is
/// what the paper studies — is unchanged.
pub fn nehalem_cluster_scaled(nodes: u32) -> ClusterTopology {
    let mut c = ClusterTopology::new(nodes, nehalem_node());
    c.interconnect = "Mellanox InfiniBand QDR (model)".to_owned();
    c
}

/// Control machine without NUMA effects: same core count, uniform hand-off
/// latency. Used to show that the mutex bias disappears on a flat machine.
pub fn uniform_node() -> NodeTopology {
    NodeTopology {
        processor: "uniform control".to_owned(),
        ..nehalem_node()
    }
}

/// Control cluster pairing [`uniform_node`] with [`HandoffLatencies::UNIFORM`].
pub fn uniform_cluster(nodes: u32) -> ClusterTopology {
    let mut c = ClusterTopology::new(nodes, uniform_node());
    c.handoff = HandoffLatencies::UNIFORM;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = nehalem_cluster();
        assert_eq!(c.nodes, 310);
        assert_eq!(c.node.sockets, 2);
        assert_eq!(c.node.cores_per_socket, 4);
        assert_eq!(c.node.clock_mhz, 2600);
        assert_eq!(c.node.l2_bytes, 256 * 1024);
        assert_eq!(c.node.l3_bytes, 8192 * 1024);
    }

    #[test]
    fn uniform_control_is_flat() {
        let c = uniform_cluster(2);
        assert_eq!(c.handoff.same_core_ns, c.handoff.cross_socket_ns);
    }
}
