//! Machine and cluster topology model.
//!
//! This crate encodes the hardware the paper's experiments ran on (Table 1:
//! dual-socket Intel Nehalem Xeon E5540 nodes, 4 cores per socket, Mellanox
//! QDR interconnect) as an explicit data model that the rest of the
//! reproduction consumes:
//!
//! * [`NodeTopology`] — sockets, cores per socket, cache sizes.
//! * [`Binding`] — how application threads are pinned to cores
//!   (compact vs. scatter, §4.2 of the paper).
//! * [`HandoffLatencies`] — the cost, in nanoseconds, of transferring the
//!   cache line holding a lock between two cores. The non-uniformity of
//!   these costs is the physical mechanism behind the arbitration bias the
//!   paper analyses (§4.3): the releasing core dirties the line, so cores
//!   sharing a cache with it observe the release first.
//! * [`ClusterTopology`] — a set of identical nodes.
//!
//! Everything is plain data with no behaviour beyond distance/latency
//! queries, so both the virtual-time platform and native code can share it.

pub mod binding;
pub mod cluster;
pub mod latency;
pub mod node;
pub mod presets;

pub use binding::{Binding, BindingPolicy};
pub use cluster::ClusterTopology;
pub use latency::{Distance, HandoffLatencies};
pub use node::{CoreId, NodeTopology, SocketId};
