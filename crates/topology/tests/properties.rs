//! Property tests of the topology model.

use mtmpi_topology::{latency, Binding, BindingPolicy, CoreId, HandoffLatencies, NodeTopology};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeTopology> {
    (1u32..5, 1u32..9).prop_map(|(s, c)| NodeTopology::new(s, c))
}

proptest! {
    /// Distance classification is symmetric and reflexive-consistent.
    #[test]
    fn distance_symmetric(node in arb_node(), a in 0u32..36, b in 0u32..36) {
        let n = node.total_cores();
        let (a, b) = (CoreId(a % n), CoreId(b % n));
        prop_assert_eq!(latency::distance(&node, a, b), latency::distance(&node, b, a));
        prop_assert_eq!(latency::distance(&node, a, a), latency::Distance::SameCore);
    }

    /// Hand-off latency lookups agree with the distance classification.
    #[test]
    fn handoff_consistent(node in arb_node(), a in 0u32..36, b in 0u32..36) {
        let n = node.total_cores();
        let (a, b) = (CoreId(a % n), CoreId(b % n));
        let l = HandoffLatencies::NEHALEM;
        prop_assert_eq!(l.between(&node, a, b), l.for_distance(latency::distance(&node, a, b)));
    }

    /// Both binding policies bijectively cover the cores when
    /// nthreads == total_cores.
    #[test]
    fn bindings_cover_all_cores(node in arb_node()) {
        let n = node.total_cores();
        for policy in [BindingPolicy::Compact, BindingPolicy::Scatter] {
            let b = Binding::new(&node, policy, n);
            let mut seen: Vec<u32> = b.cores().iter().map(|c| c.0).collect();
            seen.sort_unstable();
            let want: Vec<u32> = (0..n).collect();
            prop_assert_eq!(&seen, &want, "{:?}", policy);
        }
    }

    /// Scatter never puts threads i and i+1 on the same socket when
    /// multiple sockets exist (for i+1 < sockets).
    #[test]
    fn scatter_alternates(node in arb_node(), t in 0u32..8) {
        prop_assume!(node.sockets >= 2);
        let n = node.total_cores();
        prop_assume!(t + 1 < n.min(node.sockets));
        let b = Binding::new(&node, BindingPolicy::Scatter, n);
        let s1 = node.socket_of(b.core_of(t as usize));
        let s2 = node.socket_of(b.core_of(t as usize + 1));
        prop_assert_ne!(s1, s2);
    }

    /// Oversubscribed bindings wrap deterministically.
    #[test]
    fn oversubscription_wraps(node in arb_node(), extra in 1u32..10) {
        let n = node.total_cores();
        let b = Binding::new(&node, BindingPolicy::Compact, n + extra);
        for i in 0..extra {
            prop_assert_eq!(b.core_of((n + i) as usize), b.core_of(i as usize));
        }
    }

    /// Core numbering round-trips through socket_of/cores_of.
    #[test]
    fn socket_membership(node in arb_node(), c in 0u32..36) {
        let core = CoreId(c % node.total_cores());
        let socket = node.socket_of(core);
        let members: Vec<CoreId> = node.cores_of(socket).collect();
        prop_assert!(members.contains(&core));
        prop_assert_eq!(members.len() as u32, node.cores_per_socket);
    }
}
