//! The experiment harness: deterministic rank × thread grids.

use crate::method::Method;
use mtmpi_live::{LiveCollector, LiveConfig};
use mtmpi_metrics::{CsTrace, DanglingSampler, Histogram};
use mtmpi_net::{FaultPlan, NetModel};
use mtmpi_obs::{RingRecorder, RunRecord, Sink, Timeline, DEFAULT_SHARD_CAP};
use mtmpi_runtime::{Granularity, RankHandle, RankStats, RuntimeCosts, VciMap, World};
use mtmpi_sim::{
    EventCore, LockModelParams, Platform, PlatformReport, SimError, StepOutcome, ThreadDesc,
    VirtualPlatform,
};
use mtmpi_topology::{presets, Binding, BindingPolicy, ClusterTopology};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Observability settings for a family of runs.
#[derive(Clone, Default)]
pub struct ObsConfig {
    /// Where per-run summaries ([`RunRecord`]) accumulate; `None` = don't
    /// summarize.
    pub sink: Option<Arc<Sink>>,
    /// Capture the full structured-event timeline (CS spans, request
    /// life-cycle, poll batches, RMA services). Off by default: the
    /// histograms are always on, the timeline costs memory.
    pub trace: bool,
    /// Run the mtmpi-live online collector alongside the workload (also
    /// enabled by `MTMPI_LIVE=1`). Implies tracing. **Perturbs the
    /// schedule**: the collector participates in the simulation as one
    /// extra virtual thread, so `end_ns` and `sched_trace_hash` differ
    /// from a non-live run of the same seed — which is why this is an
    /// explicit opt-in and the committed baselines never enable it.
    pub live: bool,
}

/// What every worker closure receives.
pub struct ThreadCtx {
    /// Handle for MPI calls as this thread's rank.
    pub rank: RankHandle,
    /// Thread index within the rank (`0..nthreads`).
    pub thread: u32,
    /// Threads per rank in this run.
    pub nthreads: u32,
}

/// Environment shared by a family of runs: machine, network, cost models,
/// seed.
#[derive(Clone)]
pub struct Experiment {
    /// Cluster topology (defines NUMA hand-off costs).
    pub cluster: ClusterTopology,
    /// Interconnect model.
    pub net: NetModel,
    /// Virtual lock-arbitration parameters.
    pub lock_params: LockModelParams,
    /// Runtime per-operation costs.
    pub costs: RuntimeCosts,
    /// Master seed; every derived randomness is a pure function of it.
    pub seed: u64,
    /// Observability: summary sink and timeline capture.
    pub obs: ObsConfig,
    /// Link fault injection + recovery policy. The inert default
    /// ([`FaultPlan::none`]) leaves every run on the fault-free fast
    /// paths, byte-identical to a harness without the knob.
    pub faults: FaultPlan,
    /// Scheduler-event budget per run (`None` = unlimited). With a
    /// bound, a livelocked run fails [`Experiment::try_run`] with
    /// [`SimError::FuelExhausted`] instead of spinning forever.
    pub fuel: Option<u64>,
    /// Event-queue core override (`None` = platform default, i.e. the
    /// calendar queue unless `MTMPI_SIM_CORE` says otherwise). Set
    /// explicitly in cross-core parity tests — unlike an env toggle this
    /// cannot race a parallel test harness.
    pub event_core: Option<EventCore>,
}

impl Experiment {
    /// Paper-grade defaults on a cluster of `nodes` Nehalem nodes.
    pub fn quick(nodes: u32) -> Self {
        Self {
            cluster: presets::nehalem_cluster_scaled(nodes),
            net: NetModel::qdr(),
            lock_params: LockModelParams::default(),
            costs: RuntimeCosts::default(),
            seed: 0x5EED,
            obs: ObsConfig::default(),
            faults: FaultPlan::none(),
            fuel: None,
            event_core: None,
        }
    }

    /// Same, with an explicit seed.
    pub fn with_seed(nodes: u32, seed: u64) -> Self {
        Self {
            seed,
            ..Self::quick(nodes)
        }
    }

    /// Accumulate a [`RunRecord`] per run into `sink`.
    pub fn observe(mut self, sink: Arc<Sink>) -> Self {
        self.obs.sink = Some(sink);
        self
    }

    /// Capture the structured-event timeline of every run.
    pub fn trace(mut self, on: bool) -> Self {
        self.obs.trace = on;
        self
    }

    /// Run the online collector alongside every run (see
    /// [`ObsConfig::live`] for the perturbation caveat).
    pub fn live(mut self, on: bool) -> Self {
        self.obs.live = on;
        self
    }

    /// Inject deterministic link faults into every run (see
    /// [`FaultPlan`]). Same experiment seed + same plan ⇒ byte-identical
    /// results, fault decisions included.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Bound every run to at most `max_events` scheduler events (see
    /// [`Experiment::fuel`] field docs).
    pub fn fuel(mut self, max_events: u64) -> Self {
        self.fuel = Some(max_events);
        self
    }

    /// Pin the event-queue core for every run (see
    /// [`Experiment::event_core`] field docs).
    pub fn event_core(mut self, core: EventCore) -> Self {
        self.event_core = Some(core);
        self
    }

    /// Run `body` on every (rank, thread) of the grid described by `cfg`,
    /// on a fresh virtual platform. Panics (with the [`SimError`]
    /// rendering) on fuel exhaustion or deadlock — see
    /// [`Experiment::try_run`] for the typed surface.
    pub fn run<F>(&self, cfg: RunConfig, body: F) -> RunOutcome
    where
        F: Fn(ThreadCtx) + Send + Sync + 'static,
    {
        self.try_run(cfg, body).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Experiment::run`], but fuel exhaustion and deadlock come back
    /// as typed [`SimError`]s carrying the per-thread blocked-state
    /// snapshot.
    pub fn try_run<F>(&self, cfg: RunConfig, body: F) -> Result<RunOutcome, SimError>
    where
        F: Fn(ThreadCtx) + Send + Sync + 'static,
    {
        let mut run = self.try_start(cfg, body);
        // An effectively-unbounded quantum: identical to the monolithic
        // platform run (fuel or completion wins first).
        run.step(u64::MAX)?;
        Ok(run.finish())
    }

    /// Launch the run described by `cfg` without driving it: build the
    /// world, spawn every simulated thread, and return a parked
    /// [`TenantRun`] — a `Send` work item a scheduler (mtmpi-serve)
    /// steps in bounded quanta, possibly from a different OS thread each
    /// quantum. [`Experiment::try_run`] is exactly `try_start` +
    /// `step(u64::MAX)` + `finish`, so quantum-stepped tenants replay
    /// monolithic runs byte-identically (same `end_ns`, same
    /// `sched_trace_hash`).
    pub fn try_start<F>(&self, cfg: RunConfig, body: F) -> TenantRun
    where
        F: Fn(ThreadCtx) + Send + Sync + 'static,
    {
        let nodes = cfg.nodes;
        assert!(nodes <= self.cluster.nodes, "config exceeds cluster size");
        let vplatform = Arc::new(VirtualPlatform::new(
            self.cluster.clone(),
            self.net.clone(),
            self.lock_params,
            self.seed,
        ));
        if let Some(core) = self.event_core {
            vplatform.set_event_core(core);
        }
        let platform: Arc<dyn Platform> = vplatform.clone();
        let threads_per_rank = if cfg.method.forces_single_thread() {
            1
        } else {
            cfg.threads_per_rank
        };
        let nranks = nodes * cfg.ranks_per_node;
        let ranks_per_node = cfg.ranks_per_node;
        let live_enabled = self.obs.live || std::env::var("MTMPI_LIVE").is_ok_and(|v| v == "1");
        // Right-size the recorder's shard table to this world's actual
        // recording-thread population (workers + progress threads, with
        // headroom for the scheduler thread) instead of the full
        // 256-shard pre-allocation — a service stepping thousands of
        // small tenant worlds would otherwise pay it per tenant.
        let recording_threads =
            nranks * threads_per_rank + if cfg.progress_thread { nranks } else { 0 } + 4;
        let recorder = (self.obs.trace || live_enabled).then(|| {
            Arc::new(RingRecorder::with_shards(
                (recording_threads as usize).min(mtmpi_obs::MAX_SHARDS),
                DEFAULT_SHARD_CAP,
            ))
        });
        let live = live_enabled.then(|| {
            Arc::new(LiveCollector::new(
                recorder.as_ref().expect("live implies trace").clone(),
                LiveConfig::default(),
            ))
        });
        let mut builder = World::builder(platform.clone())
            .ranks(nranks)
            .rank_on_node(move |r| r / ranks_per_node)
            .lock(cfg.method.lock_kind())
            .granularity(cfg.granularity)
            .costs(self.costs)
            .window_bytes(cfg.window_bytes)
            .expect_rma(cfg.progress_thread);
        if let Some(map) = &cfg.vci_map {
            builder = builder.vci_map(map.clone());
        }
        if cfg.streams > 0 {
            builder = builder.streams(cfg.streams);
        }
        if self.faults.is_active() {
            builder = builder.fault_plan(self.faults.clone());
        }
        if let Some(f) = self.fuel {
            builder = builder.fuel(f);
        }
        if let Some(rec) = &recorder {
            builder = builder
                .recorder(rec.clone())
                .recorder_shards(rec.shard_count());
        }
        if let Some(c) = &live {
            builder = builder.live(c.clone());
        }
        let world = builder
            .build()
            .unwrap_or_else(|e| panic!("invalid run configuration: {e}"));

        // Binding: the node's worker threads (all ranks on the node ×
        // threads) fill cores according to the policy; the optional
        // progress thread of each rank takes the next slot.
        let slots_per_node = cfg.ranks_per_node * threads_per_rank
            + if cfg.progress_thread {
                cfg.ranks_per_node
            } else {
                0
            };
        let binding = Binding::new(&self.cluster.node, cfg.binding, slots_per_node);

        // Workload threads still running — the live collector's pump
        // thread parks itself once this hits zero. Decrements are plain
        // host atomics: they never advance virtual time, so counting is
        // free even when no collector is installed.
        let workload_threads =
            nranks * threads_per_rank + if cfg.progress_thread { nranks } else { 0 };
        let live_remaining = Arc::new(AtomicU32::new(workload_threads));

        let body = Arc::new(body);
        for r in 0..nranks {
            let local_rank = r % cfg.ranks_per_node;
            let node = r / cfg.ranks_per_node;
            // Per-rank progress-thread shutdown: the last worker to
            // finish flips the stop flag.
            let stop = Arc::new(AtomicBool::new(false));
            let remaining = Arc::new(AtomicU32::new(threads_per_rank));
            for t in 0..threads_per_rank {
                let slot = (local_rank * threads_per_rank + t) as usize;
                let core = binding.core_of(slot);
                let handle = world.rank(r);
                let body = body.clone();
                let stop = stop.clone();
                let remaining = remaining.clone();
                let live_remaining = live_remaining.clone();
                platform.spawn(
                    ThreadDesc {
                        name: format!("r{r}t{t}"),
                        node,
                        core,
                    },
                    Box::new(move || {
                        body(ThreadCtx {
                            rank: handle,
                            thread: t,
                            nthreads: threads_per_rank,
                        });
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            stop.store(true, Ordering::Release);
                        }
                        live_remaining.fetch_sub(1, Ordering::Release);
                    }),
                );
            }
            if cfg.progress_thread {
                let slot = (cfg.ranks_per_node * threads_per_rank + local_rank) as usize;
                let core = binding.core_of(slot);
                let handle = world.rank(r);
                let live_remaining = live_remaining.clone();
                platform.spawn(
                    ThreadDesc {
                        name: format!("r{r}prog"),
                        node,
                        core,
                    },
                    Box::new(move || {
                        handle.progress_loop(&stop);
                        live_remaining.fetch_sub(1, Ordering::Release);
                    }),
                );
            }
        }

        // The online collector runs as one more simulated thread: it
        // alternates a coarse virtual-time tick with a bounded drain of
        // the ring, so live statistics advance *on the virtual clock*,
        // not behind a post-run barrier. It exits once every workload
        // thread has finished, then folds the tail.
        if let Some(c) = &live {
            let c = c.clone();
            let lr = live_remaining.clone();
            let p = platform.clone();
            let watch = std::env::var("MTMPI_LIVE_WATCH").is_ok_and(|v| v == "1");
            platform.spawn(
                ThreadDesc {
                    name: "live".to_string(),
                    node: 0,
                    core: mtmpi_topology::CoreId(0),
                },
                Box::new(move || {
                    // A quarter of the default 1ms window: frequent
                    // enough for fresh snapshots, coarse enough that the
                    // collector stays a spectator of the schedule.
                    const TICK_NS: u64 = 250_000;
                    let mut ticks = 0u64;
                    while lr.load(Ordering::Acquire) > 0 {
                        p.compute(TICK_NS);
                        // The round-trip that actually lets the workload
                        // run up to our tick (`compute` alone only banks
                        // local virtual time).
                        p.yield_now();
                        c.pump(p.now_ns());
                        ticks += 1;
                        if watch && ticks.is_multiple_of(16) {
                            eprintln!("{}", c.snapshot().text());
                        }
                    }
                    c.finalize();
                    if watch {
                        eprintln!("{}", c.snapshot().text());
                    }
                }),
            );
        }

        TenantRun {
            handle: vplatform.start(),
            world: Some(world),
            recorder,
            live,
            sink: self.obs.sink.clone(),
            label: cfg.effective_label(),
            nodes,
            nranks,
            threads_per_rank,
        }
    }
}

/// A launched-but-parked run: the `Send` work item behind
/// [`Experiment::try_start`]. Holds the platform's [`RunHandle`]
/// together with everything the post-run bookkeeping needs (world,
/// recorder, sink), so a worker pool can step it in quanta on whatever
/// OS thread is free and finish it wherever it completes.
pub struct TenantRun {
    handle: mtmpi_sim::RunHandle,
    // `Option` so `finish` can move the world into the outcome while
    // `Drop`-time abort marking still has it on error paths.
    world: Option<World>,
    recorder: Option<Arc<RingRecorder>>,
    live: Option<Arc<LiveCollector>>,
    sink: Option<Arc<Sink>>,
    label: String,
    nodes: u32,
    nranks: u32,
    threads_per_rank: u32,
}

// A tenant must be parkable on one worker and resumable on another.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TenantRun>();
};

impl TenantRun {
    /// Advance the run by at most `quantum` scheduler events. On a typed
    /// failure the world is marked aborted (in-flight requests are the
    /// error's snapshot, not leaks) and the run refuses further steps.
    pub fn step(&mut self, quantum: u64) -> Result<StepOutcome, SimError> {
        match self.handle.step(quantum) {
            Ok(o) => Ok(o),
            Err(e) => {
                if let Some(w) = &self.world {
                    w.mark_aborted();
                }
                Err(e)
            }
        }
    }

    /// Scheduler events executed so far.
    pub fn events(&self) -> u64 {
        self.handle.events()
    }

    /// Latest virtual end time observed from finished threads.
    pub fn end_ns(&self) -> u64 {
        self.handle.end_ns()
    }

    /// `true` once the run reached [`StepOutcome::Done`].
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Collect the completed run: join workers, drain observability,
    /// feed the sink. Panics if the run has not reached
    /// [`StepOutcome::Done`] (same contract as `RunHandle::finish`).
    pub fn finish(mut self) -> RunOutcome {
        let report = self.handle.finish();
        let world = self.world.take().expect("finish() called once");
        if let Some(c) = &self.live {
            if let Ok(path) = std::env::var("MTMPI_LIVE_OUT") {
                if !path.is_empty() {
                    use std::io::Write as _;
                    let mut f = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .unwrap_or_else(|e| panic!("open MTMPI_LIVE_OUT={path}: {e}"));
                    let _ = writeln!(
                        f,
                        "# mtmpi-live run label={} threads={} nodes={}",
                        self.label, self.threads_per_rank, self.nodes
                    );
                    let _ = f.write_all(c.snapshot().prom().as_bytes());
                }
            }
        }
        let timeline = self.recorder.take().map(|rec| {
            // SAFETY: `RunHandle::finish` has joined every worker (and
            // any progress thread) — no thread is still writing.
            unsafe { rec.drain_unsynced() }
        });
        let out = RunOutcome {
            end_ns: report.end_ns,
            report,
            world,
            nranks: self.nranks,
            threads_per_rank: self.threads_per_rank,
            timeline,
        };
        if let Some(sink) = &self.sink {
            let mut cs_wait = Histogram::new();
            let mut cs_hold = Histogram::new();
            let mut msg_latency = Histogram::new();
            for r in 0..self.nranks {
                let st = out.world.stats(r);
                cs_wait.merge(&st.cs_wait_ns);
                cs_hold.merge(&st.cs_hold_ns);
                msg_latency.merge(&st.msg_latency_ns);
            }
            sink.push(RunRecord {
                label: self.label.clone(),
                threads: self.threads_per_rank,
                nodes: self.nodes,
                end_ns: out.end_ns,
                cs_wait,
                cs_hold,
                msg_latency,
                sched_trace_hash: out.report.sched_trace_hash,
                timeline: out.timeline.clone(),
            });
        }
        out
    }
}

/// Grid + method description of one run.
#[derive(Clone)]
pub struct RunConfig {
    /// Arbitration method.
    pub method: Method,
    /// Number of cluster nodes used.
    pub nodes: u32,
    /// MPI ranks per node.
    pub ranks_per_node: u32,
    /// Threads per rank (ignored for [`Method::Single`]).
    pub threads_per_rank: u32,
    /// Thread-to-core binding policy.
    pub binding: BindingPolicy,
    /// Critical-section granularity.
    pub granularity: Granularity,
    /// RMA window size per rank (0 = no window).
    pub window_bytes: usize,
    /// Spawn an asynchronous progress thread per rank.
    pub progress_thread: bool,
    /// VCI sharding policy; `None` = the single global critical section.
    pub vci_map: Option<VciMap>,
    /// Single-owner stream shards appended after the sharded VCIs
    /// (0 = none; requires a sharded pool, i.e. `vci_map`/`vci_count`).
    pub streams: u32,
    /// Run label recorded in bench output (`None` = the method label).
    /// Labels key baseline diffing and timeline retention, so runs of
    /// one figure that differ beyond `(method, threads, nodes)` — e.g.
    /// a fault-plan sweep — should carry distinct labels.
    pub label: Option<String>,
}

impl RunConfig {
    /// Defaults matching the paper's common setup: 2 nodes × 1 rank,
    /// compact binding, global CS, no RMA, no progress thread.
    pub fn new(method: Method) -> Self {
        Self {
            method,
            nodes: 2,
            ranks_per_node: 1,
            threads_per_rank: 1,
            binding: BindingPolicy::Compact,
            granularity: Granularity::Global,
            window_bytes: 0,
            progress_thread: false,
            vci_map: None,
            streams: 0,
            label: None,
        }
    }

    /// Set the node count.
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// Set ranks per node.
    pub fn ranks_per_node(mut self, n: u32) -> Self {
        self.ranks_per_node = n;
        self
    }

    /// Set threads per rank.
    pub fn threads_per_rank(mut self, n: u32) -> Self {
        self.threads_per_rank = n;
        self
    }

    /// Set the binding policy.
    pub fn binding(mut self, b: BindingPolicy) -> Self {
        self.binding = b;
        self
    }

    /// Set the CS granularity.
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Enable an RMA window of `bytes` per rank.
    pub fn window_bytes(mut self, bytes: usize) -> Self {
        self.window_bytes = bytes;
        self
    }

    /// Enable the per-rank asynchronous progress thread.
    pub fn progress_thread(mut self, on: bool) -> Self {
        self.progress_thread = on;
        self
    }

    /// Shard every rank's runtime into `n` VCIs with the default hash
    /// routing (1 = the unsharded global critical section).
    pub fn vci_count(mut self, n: u32) -> Self {
        self.vci_map = if n == 1 { None } else { Some(VciMap::new(n)) };
        self
    }

    /// Shard with an explicit [`VciMap`] policy.
    pub fn vci_map(mut self, map: VciMap) -> Self {
        self.vci_map = Some(map);
        self
    }

    /// Give every rank `n` single-owner stream shards (bound at run time
    /// with `ctx.rank.stream_at(..)`); needs a sharded pool.
    pub fn streams(mut self, n: u32) -> Self {
        self.streams = n;
        self
    }

    /// Override the recorded run label (defaults to the method label).
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// The label this run is recorded under.
    pub fn effective_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.method.label().to_string())
    }
}

/// Results of one run.
pub struct RunOutcome {
    /// Raw platform report (lock traces by LockId).
    pub report: PlatformReport,
    /// The world (post-run profiling accessors).
    pub world: World,
    /// Virtual end time.
    pub end_ns: u64,
    /// Total ranks.
    pub nranks: u32,
    /// Effective threads per rank.
    pub threads_per_rank: u32,
    /// Structured-event timeline (present when the experiment had
    /// tracing enabled via [`Experiment::trace`]).
    pub timeline: Option<Timeline>,
}

impl RunOutcome {
    /// Acquisition trace of a rank's queue lock.
    pub fn trace(&self, rank: u32) -> &CsTrace {
        &self.report.lock_traces[self.world.lock_of(rank).0]
    }

    /// The unified post-run snapshot of one rank (counters, histograms,
    /// ledger, dangling profile, window contents).
    pub fn stats(&self, rank: u32) -> RankStats {
        self.world.stats(rank)
    }

    /// Dangling-request profile of a rank.
    pub fn dangling(&self, rank: u32) -> DanglingSampler {
        self.stats(rank).dangling
    }

    /// Aggregate dangling profile over all ranks.
    pub fn dangling_all(&self) -> DanglingSampler {
        let mut acc = DanglingSampler::new();
        for r in 0..self.nranks {
            acc.merge(&self.stats(r).dangling);
        }
        acc
    }

    /// End-to-end wall (virtual) seconds.
    pub fn seconds(&self) -> f64 {
        self.end_ns as f64 / 1e9
    }

    /// Messages/sec for `total_msgs` messages moved during the run.
    pub fn msg_rate(&self, total_msgs: u64) -> f64 {
        total_msgs as f64 / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_method_forces_one_thread() {
        let exp = Experiment::quick(2);
        let out = exp.run(
            RunConfig::new(Method::Single).threads_per_rank(8).nodes(1),
            |ctx| {
                assert_eq!(ctx.nthreads, 1);
                assert_eq!(ctx.thread, 0);
            },
        );
        assert_eq!(out.threads_per_rank, 1);
    }

    #[test]
    fn grid_spawns_rank_times_threads() {
        use std::sync::atomic::AtomicU32;
        let exp = Experiment::quick(2);
        let count = Arc::new(AtomicU32::new(0));
        let c2 = count.clone();
        let out = exp.run(
            RunConfig::new(Method::Ticket)
                .nodes(2)
                .ranks_per_node(2)
                .threads_per_rank(3),
            move |ctx| {
                assert!(ctx.thread < 3);
                assert!(ctx.rank.rank() < 4);
                c2.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 12);
        assert_eq!(out.nranks, 4);
    }
}
