//! The experiment harness: deterministic rank × thread grids.

use crate::method::Method;
use mtmpi_metrics::{CsTrace, DanglingSampler};
use mtmpi_net::NetModel;
use mtmpi_runtime::{Granularity, RankHandle, RuntimeCosts, World};
use mtmpi_sim::{LockModelParams, Platform, PlatformReport, ThreadDesc, VirtualPlatform};
use mtmpi_topology::{presets, Binding, BindingPolicy, ClusterTopology};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// What every worker closure receives.
pub struct ThreadCtx {
    /// Handle for MPI calls as this thread's rank.
    pub rank: RankHandle,
    /// Thread index within the rank (`0..nthreads`).
    pub thread: u32,
    /// Threads per rank in this run.
    pub nthreads: u32,
}

/// Environment shared by a family of runs: machine, network, cost models,
/// seed.
#[derive(Clone)]
pub struct Experiment {
    /// Cluster topology (defines NUMA hand-off costs).
    pub cluster: ClusterTopology,
    /// Interconnect model.
    pub net: NetModel,
    /// Virtual lock-arbitration parameters.
    pub lock_params: LockModelParams,
    /// Runtime per-operation costs.
    pub costs: RuntimeCosts,
    /// Master seed; every derived randomness is a pure function of it.
    pub seed: u64,
}

impl Experiment {
    /// Paper-grade defaults on a cluster of `nodes` Nehalem nodes.
    pub fn quick(nodes: u32) -> Self {
        Self {
            cluster: presets::nehalem_cluster_scaled(nodes),
            net: NetModel::qdr(),
            lock_params: LockModelParams::default(),
            costs: RuntimeCosts::default(),
            seed: 0x5EED,
        }
    }

    /// Same, with an explicit seed.
    pub fn with_seed(nodes: u32, seed: u64) -> Self {
        Self {
            seed,
            ..Self::quick(nodes)
        }
    }

    /// Run `body` on every (rank, thread) of the grid described by `cfg`,
    /// on a fresh virtual platform.
    pub fn run<F>(&self, cfg: RunConfig, body: F) -> RunOutcome
    where
        F: Fn(ThreadCtx) + Send + Sync + 'static,
    {
        let nodes = cfg.nodes;
        assert!(nodes <= self.cluster.nodes, "config exceeds cluster size");
        let platform: Arc<dyn Platform> = Arc::new(VirtualPlatform::new(
            self.cluster.clone(),
            self.net.clone(),
            self.lock_params,
            self.seed,
        ));
        let threads_per_rank = if cfg.method.forces_single_thread() {
            1
        } else {
            cfg.threads_per_rank
        };
        let nranks = nodes * cfg.ranks_per_node;
        let ranks_per_node = cfg.ranks_per_node;
        let world = World::builder(platform.clone())
            .ranks(nranks)
            .rank_on_node(move |r| r / ranks_per_node)
            .lock(cfg.method.lock_kind())
            .granularity(cfg.granularity)
            .costs(self.costs)
            .window_bytes(cfg.window_bytes)
            .build();

        // Binding: the node's worker threads (all ranks on the node ×
        // threads) fill cores according to the policy; the optional
        // progress thread of each rank takes the next slot.
        let slots_per_node = cfg.ranks_per_node * threads_per_rank
            + if cfg.progress_thread {
                cfg.ranks_per_node
            } else {
                0
            };
        let binding = Binding::new(&self.cluster.node, cfg.binding, slots_per_node);

        let body = Arc::new(body);
        for r in 0..nranks {
            let local_rank = r % cfg.ranks_per_node;
            let node = r / cfg.ranks_per_node;
            // Per-rank progress-thread shutdown: the last worker to
            // finish flips the stop flag.
            let stop = Arc::new(AtomicBool::new(false));
            let remaining = Arc::new(AtomicU32::new(threads_per_rank));
            for t in 0..threads_per_rank {
                let slot = (local_rank * threads_per_rank + t) as usize;
                let core = binding.core_of(slot);
                let handle = world.rank(r);
                let body = body.clone();
                let stop = stop.clone();
                let remaining = remaining.clone();
                platform.spawn(
                    ThreadDesc {
                        name: format!("r{r}t{t}"),
                        node,
                        core,
                    },
                    Box::new(move || {
                        body(ThreadCtx {
                            rank: handle,
                            thread: t,
                            nthreads: threads_per_rank,
                        });
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            stop.store(true, Ordering::Release);
                        }
                    }),
                );
            }
            if cfg.progress_thread {
                let slot = (cfg.ranks_per_node * threads_per_rank + local_rank) as usize;
                let core = binding.core_of(slot);
                let handle = world.rank(r);
                platform.spawn(
                    ThreadDesc {
                        name: format!("r{r}prog"),
                        node,
                        core,
                    },
                    Box::new(move || handle.progress_loop(&stop)),
                );
            }
        }

        let report = platform.run();
        RunOutcome {
            end_ns: report.end_ns,
            report,
            world,
            nranks,
            threads_per_rank,
        }
    }
}

/// Grid + method description of one run.
#[derive(Clone)]
pub struct RunConfig {
    /// Arbitration method.
    pub method: Method,
    /// Number of cluster nodes used.
    pub nodes: u32,
    /// MPI ranks per node.
    pub ranks_per_node: u32,
    /// Threads per rank (ignored for [`Method::Single`]).
    pub threads_per_rank: u32,
    /// Thread-to-core binding policy.
    pub binding: BindingPolicy,
    /// Critical-section granularity.
    pub granularity: Granularity,
    /// RMA window size per rank (0 = no window).
    pub window_bytes: usize,
    /// Spawn an asynchronous progress thread per rank.
    pub progress_thread: bool,
}

impl RunConfig {
    /// Defaults matching the paper's common setup: 2 nodes × 1 rank,
    /// compact binding, global CS, no RMA, no progress thread.
    pub fn new(method: Method) -> Self {
        Self {
            method,
            nodes: 2,
            ranks_per_node: 1,
            threads_per_rank: 1,
            binding: BindingPolicy::Compact,
            granularity: Granularity::Global,
            window_bytes: 0,
            progress_thread: false,
        }
    }

    /// Set the node count.
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// Set ranks per node.
    pub fn ranks_per_node(mut self, n: u32) -> Self {
        self.ranks_per_node = n;
        self
    }

    /// Set threads per rank.
    pub fn threads_per_rank(mut self, n: u32) -> Self {
        self.threads_per_rank = n;
        self
    }

    /// Set the binding policy.
    pub fn binding(mut self, b: BindingPolicy) -> Self {
        self.binding = b;
        self
    }

    /// Set the CS granularity.
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Enable an RMA window of `bytes` per rank.
    pub fn window_bytes(mut self, bytes: usize) -> Self {
        self.window_bytes = bytes;
        self
    }

    /// Enable the per-rank asynchronous progress thread.
    pub fn progress_thread(mut self, on: bool) -> Self {
        self.progress_thread = on;
        self
    }
}

/// Results of one run.
pub struct RunOutcome {
    /// Raw platform report (lock traces by LockId).
    pub report: PlatformReport,
    /// The world (post-run profiling accessors).
    pub world: World,
    /// Virtual end time.
    pub end_ns: u64,
    /// Total ranks.
    pub nranks: u32,
    /// Effective threads per rank.
    pub threads_per_rank: u32,
}

impl RunOutcome {
    /// Acquisition trace of a rank's queue lock.
    pub fn trace(&self, rank: u32) -> &CsTrace {
        &self.report.lock_traces[self.world.lock_of(rank).0]
    }

    /// Dangling-request profile of a rank.
    pub fn dangling(&self, rank: u32) -> DanglingSampler {
        self.world.dangling_report(rank)
    }

    /// Aggregate dangling profile over all ranks.
    pub fn dangling_all(&self) -> DanglingSampler {
        let mut acc = DanglingSampler::new();
        for r in 0..self.nranks {
            acc.merge(&self.world.dangling_report(r));
        }
        acc
    }

    /// End-to-end wall (virtual) seconds.
    pub fn seconds(&self) -> f64 {
        self.end_ns as f64 / 1e9
    }

    /// Messages/sec for `total_msgs` messages moved during the run.
    pub fn msg_rate(&self, total_msgs: u64) -> f64 {
        total_msgs as f64 / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_method_forces_one_thread() {
        let exp = Experiment::quick(2);
        let out = exp.run(
            RunConfig::new(Method::Single).threads_per_rank(8).nodes(1),
            |ctx| {
                assert_eq!(ctx.nthreads, 1);
                assert_eq!(ctx.thread, 0);
            },
        );
        assert_eq!(out.threads_per_rank, 1);
    }

    #[test]
    fn grid_spawns_rank_times_threads() {
        use std::sync::atomic::AtomicU32;
        let exp = Experiment::quick(2);
        let count = Arc::new(AtomicU32::new(0));
        let c2 = count.clone();
        let out = exp.run(
            RunConfig::new(Method::Ticket)
                .nodes(2)
                .ranks_per_node(2)
                .threads_per_rank(3),
            move |ctx| {
                assert!(ctx.thread < 3);
                assert!(ctx.rank.rank() < 4);
                c2.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 12);
        assert_eq!(out.nranks, 4);
    }
}
