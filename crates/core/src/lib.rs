//! # mtmpi — MPI+Threads runtime-contention reproduction
//!
//! Facade crate for the reproduction of *MPI+Threads: Runtime Contention
//! and Remedies* (PPoPP'15). It re-exports the workspace layers and adds
//! the experiment harness every figure binary and example uses:
//!
//! * [`Method`] — the paper's legend entries (mutex / ticket / priority /
//!   single, plus the extra baselines);
//! * [`Experiment`]/[`RunConfig`] — "run this closure on `nodes` ×
//!   `ranks_per_node` × `threads_per_rank` with binding B and method M,
//!   deterministically, and hand back traces and profiles";
//! * [`prelude`] — one-line import for applications.
//!
//! ```
//! use mtmpi::prelude::*;
//!
//! let exp = Experiment::quick(2); // 2 nodes, paper-grade defaults
//! let out = exp.run(
//!     RunConfig::new(Method::Ticket).ranks_per_node(1).threads_per_rank(2),
//!     |ctx| {
//!         // Every (rank, thread) runs this body; ops issue through
//!         // the communicator-first surface.
//!         let c = ctx.rank.world_comm();
//!         if c.rank() == 0 {
//!             c.send(1, ctx.thread as i32, MsgData::Synthetic(64));
//!         } else {
//!             c.recv(Some(0), Some(ctx.thread as i32));
//!         }
//!     },
//! );
//! assert!(out.end_ns > 0);
//! ```

pub mod harness;
pub mod method;

pub use harness::{Experiment, ObsConfig, RunConfig, RunOutcome, TenantRun, ThreadCtx};
pub use method::Method;
pub use mtmpi_sim::{EventCore, SimError, StepOutcome};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::harness::{Experiment, ObsConfig, RunConfig, RunOutcome, TenantRun, ThreadCtx};
    pub use crate::method::Method;
    pub use mtmpi_metrics::{summary, BiasAnalysis, Histogram, Series, Table};
    pub use mtmpi_obs::{chrome_trace, jsonl, text_report, CsStats, RunRecord, Sink, Timeline};
    pub use mtmpi_runtime::prelude::*;
    pub use mtmpi_sim::{EventCore, SimError, StepOutcome};
    pub use mtmpi_topology::{Binding, BindingPolicy};
}
