//! The paper's arbitration methods as a closed enum.

use mtmpi_sim::LockKind;

/// Legend entries of the paper's figures, plus the extra baselines this
/// reproduction implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// NPTL-style mutex (the baseline whose bias the paper analyses).
    Mutex,
    /// FCFS ticket lock (remedy 1).
    Ticket,
    /// Two-level priority ticket lock (remedy 2).
    Priority,
    /// Single-threaded execution (`MPI_THREAD_SINGLE` comparison): the
    /// harness forces one thread per rank; the lock is an uncontended
    /// mutex.
    Single,
    /// Socket-aware cohort lock (§7 extension) with a hand-over budget.
    Cohort(u32),
    /// Test-and-set baseline.
    Tas,
    /// Test-and-test-and-set baseline.
    Ttas,
    /// MCS queue lock baseline.
    Mcs,
    /// CLH queue lock baseline.
    Clh,
    /// Selective wake-up (§9 future work): FIFO plus completion-driven
    /// queue jumping.
    Selective,
}

impl Method {
    /// The three methods every figure of the paper compares.
    pub const PAPER_TRIO: [Method; 3] = [Method::Mutex, Method::Ticket, Method::Priority];

    /// The trio plus the single-threaded reference (Fig 8).
    pub const PAPER_QUARTET: [Method; 4] = [
        Method::Single,
        Method::Mutex,
        Method::Ticket,
        Method::Priority,
    ];

    /// Platform lock kind implementing this method.
    pub fn lock_kind(self) -> LockKind {
        match self {
            Method::Mutex | Method::Single => LockKind::Mutex,
            Method::Ticket => LockKind::Ticket,
            Method::Priority => LockKind::Priority,
            Method::Cohort(budget) => LockKind::Cohort { budget },
            Method::Tas => LockKind::Tas,
            Method::Ttas => LockKind::Ttas,
            Method::Mcs => LockKind::Mcs,
            Method::Clh => LockKind::Clh,
            Method::Selective => LockKind::Selective,
        }
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Mutex => "Mutex",
            Method::Ticket => "Ticket",
            Method::Priority => "Priority",
            Method::Single => "Single",
            Method::Cohort(_) => "Cohort",
            Method::Tas => "TAS",
            Method::Ttas => "TTAS",
            Method::Mcs => "MCS",
            Method::Clh => "CLH",
            Method::Selective => "Selective",
        }
    }

    /// Whether the harness must force one thread per rank.
    pub fn forces_single_thread(self) -> bool {
        matches!(self, Method::Single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trio_and_labels() {
        assert_eq!(Method::PAPER_TRIO.len(), 3);
        assert_eq!(Method::Mutex.label(), "Mutex");
        assert_eq!(Method::Ticket.lock_kind(), LockKind::Ticket);
        assert!(Method::Single.forces_single_thread());
        assert!(!Method::Priority.forces_single_thread());
        assert_eq!(
            Method::Cohort(4).lock_kind(),
            LockKind::Cohort { budget: 4 }
        );
    }
}
