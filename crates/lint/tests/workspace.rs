//! Whole-tree gate: the committed workspace stays lint-clean, and a
//! seeded violation is guaranteed to fail the run — the two halves of
//! the CI contract (`cargo run -p xtask -- lint` exits 0 today, and
//! would not if someone broke a concurrency contract).

use mtmpi_lint::baseline::{self, BaselineEntry};
use mtmpi_lint::{engine, SourceFile};
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    // crates/lint → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let report = mtmpi_lint::run(&root()).expect("baseline parses");
    assert!(
        report.ok(),
        "unbaselined findings — fix, allow with justification, or baseline:\n{}",
        report.render_text()
    );
    assert!(
        report.stale.is_empty(),
        "stale baseline entries — prune them:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — did file discovery break?",
        report.files_scanned
    );
}

/// A hand-off store with `Relaxed`, as someone would actually type it.
const SEEDED: &str = r#"
use std::sync::atomic::{AtomicBool, Ordering};
pub struct S { locked: AtomicBool }
impl S {
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Relaxed);
    }
}
"#;

#[test]
fn seeding_a_violation_fails_the_run() {
    let mut files = engine::load_workspace(&root());
    let before = engine::check_files(&files).len();
    files.push(SourceFile::parse(
        Path::new("crates/runtime/src/seeded_violation.rs"),
        SEEDED,
    ));
    let after = engine::check_files(&files);
    assert_eq!(
        after.len(),
        before + 1,
        "the seeded Relaxed hand-off store must add exactly one finding"
    );
    let d = after
        .iter()
        .find(|d| d.path == "crates/runtime/src/seeded_violation.rs")
        .expect("finding points at the seeded file");
    assert_eq!(d.rule, "L001");
}

#[test]
fn baselining_the_seeded_violation_silences_it() {
    let seeded = SourceFile::parse(Path::new("crates/runtime/src/seeded_violation.rs"), SEEDED);
    let diags = engine::check_files(std::slice::from_ref(&seeded));
    assert_eq!(diags.len(), 1);
    let entry = BaselineEntry {
        rule: diags[0].rule.to_string(),
        fingerprint: diags[0].fingerprint(),
        path: diags[0].path.clone(),
        snippet: diags[0].snippet.trim().to_string(),
    };
    let (fresh, baselined, stale) = baseline::apply(diags, &[entry]);
    assert!(fresh.is_empty(), "baselined finding still fresh: {fresh:?}");
    assert_eq!(baselined.len(), 1);
    assert!(stale.is_empty());
}

#[test]
fn json_report_is_well_formed_enough() {
    let report = mtmpi_lint::run(&root()).expect("baseline parses");
    let json = report.render_json();
    assert!(json.starts_with("{\"version\":1,"));
    assert!(json.ends_with('}'));
    // All six rules are described for downstream tooling.
    for id in ["L001", "L002", "L003", "L004", "L005", "L006"] {
        assert!(json.contains(&format!("\"id\":\"{id}\"")), "missing {id}");
    }
}
