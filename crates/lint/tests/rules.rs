//! Fixture tests: every rule L001–L006 demonstrably fires, on exactly
//! the sites its fixture marks, and allow comments suppress it.
//!
//! Each fixture under `crates/lint/fixtures/` annotates its expected
//! findings with a trailing `// FIRE: L00x` marker and its suppressed
//! sites with `// ALLOWED: L00x`, so the expectations live next to the
//! code they describe and survive fixture edits. A rule that stops
//! firing (or fires somewhere new) fails the comparison here.

use mtmpi_lint::rules::{self, CsContext};
use mtmpi_lint::SourceFile;
use std::path::Path;

/// Parse a fixture, assigning it a synthetic workspace path that puts
/// it in the right rule scope.
fn fixture(name: &str, scoped_path: &str) -> (SourceFile, String) {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&disk).unwrap_or_else(|e| panic!("read {}: {e}", disk.display()));
    (SourceFile::parse(Path::new(scoped_path), &src), src)
}

/// 1-based lines carrying a `// <marker>: <rule>` annotation.
fn marked_lines(src: &str, marker: &str, rule: &str) -> Vec<u32> {
    let tag = format!("// {marker}: {rule}");
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(&tag))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

/// Run the catalogue on one parsed fixture; returns (kept, suppressed)
/// line lists for `rule` — mirroring the engine's allow filtering.
fn findings(file: &SourceFile, rule: &str) -> (Vec<u32>, Vec<u32>) {
    let ctx = if rule == "L003" {
        rules::cs_entering_fns(&[file])
    } else {
        CsContext::default()
    };
    let (mut kept, mut suppressed) = (Vec::new(), Vec::new());
    for d in rules::check_file(file, &ctx) {
        if d.rule != rule {
            panic!("fixture for {rule} tripped {}: {d}", d.rule);
        }
        if file.allowed(d.rule, d.line) {
            suppressed.push(d.line);
        } else {
            kept.push(d.line);
        }
    }
    (kept, suppressed)
}

/// The shared per-rule assertion: surviving findings == FIRE markers,
/// suppressed findings == ALLOWED markers, and both sets non-empty
/// (a fixture that proves nothing is a bug here, not a pass).
fn assert_fixture(name: &str, scoped_path: &str, rule: &str) {
    let (file, src) = fixture(name, scoped_path);
    let (kept, suppressed) = findings(&file, rule);
    let fire = marked_lines(&src, "FIRE", rule);
    let allowed = marked_lines(&src, "ALLOWED", rule);
    assert!(!fire.is_empty(), "{name}: no FIRE markers");
    assert_eq!(kept, fire, "{name}: {rule} findings vs FIRE markers");
    assert_eq!(
        suppressed, allowed,
        "{name}: {rule} suppressed sites vs ALLOWED markers"
    );
}

#[test]
fn l001_relaxed_handoff_mutations() {
    assert_fixture("l001.rs", "crates/locks/src/fixture_l001.rs", "L001");
}

#[test]
fn l002_acquireless_published_loads() {
    assert_fixture("l002.rs", "crates/locks/src/fixture_l002.rs", "L002");
}

#[test]
fn l003_nested_critical_sections() {
    assert_fixture("l003.rs", "crates/runtime/src/fixture_l003.rs", "L003");
}

#[test]
fn l003_fixpoint_marks_the_right_fns() {
    let (file, _) = fixture("l003.rs", "crates/runtime/src/fixture_l003.rs");
    let ctx = rules::cs_entering_fns(&[&file]);
    assert!(
        ctx.entering.contains("helper_enters"),
        "helper_enters reaches w.cs() and must be marked"
    );
    assert!(
        !ctx.entering.contains("innocent_helper"),
        "innocent_helper never touches a CS"
    );
}

#[test]
fn l003_out_of_scope_path_is_skipped() {
    // The same source under a non-runtime path produces no L003.
    let (file, _) = fixture("l003.rs", "crates/bench/src/fixture_l003.rs");
    let ctx = rules::cs_entering_fns(&[&file]);
    let diags = rules::check_file(&file, &ctx);
    assert!(diags.is_empty(), "L003 is scoped to the runtime: {diags:?}");
}

#[test]
fn l004_determinism_sources() {
    assert_fixture("l004.rs", "crates/sim/src/fixture_l004.rs", "L004");
}

#[test]
fn l005_panics_on_typed_error_paths() {
    assert_fixture("l005.rs", "crates/runtime/src/fixture_l005.rs", "L005");
}

#[test]
fn l006_undocumented_unsafe() {
    assert_fixture("l006.rs", "crates/core/src/fixture_l006.rs", "L006");
}

#[test]
fn diagnostics_are_deterministic() {
    // Two parses of the same fixture yield identical ordered output —
    // the lint's own replay contract.
    let a = fixture("l004.rs", "crates/sim/src/fixture_l004.rs").0;
    let b = fixture("l004.rs", "crates/sim/src/fixture_l004.rs").0;
    let ctx = CsContext::default();
    let da: Vec<String> = rules::check_file(&a, &ctx)
        .iter()
        .map(|d| d.to_string())
        .collect();
    let db: Vec<String> = rules::check_file(&b, &ctx)
        .iter()
        .map(|d| d.to_string())
        .collect();
    assert_eq!(da, db);
}

#[test]
fn fingerprints_survive_line_moves() {
    // Baseline fingerprints must not depend on line numbers, or every
    // unrelated edit above a baselined site would invalidate the entry.
    let (file, _) = fixture("l001.rs", "crates/locks/src/fixture_l001.rs");
    let shifted_src = format!(
        "// padding\n// padding\n{}",
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/l001.rs"))
            .unwrap()
    );
    let shifted = SourceFile::parse(Path::new("crates/locks/src/fixture_l001.rs"), &shifted_src);
    let ctx = CsContext::default();
    let fp = |f: &SourceFile| -> Vec<u64> {
        rules::check_file(f, &ctx)
            .iter()
            .map(|d| d.fingerprint())
            .collect()
    };
    assert_eq!(fp(&file), fp(&shifted));
}
