//! A minimal Rust lexer: the front end of mtmpi-lint.
//!
//! The real `syn` crate is unavailable offline (this workspace vendors
//! no external code — see `crates/shims/README.md`), so the lint engine
//! carries its own token-level front end. It does **not** parse Rust —
//! it produces a flat stream of spanned tokens with comments and string
//! bodies separated out, which is exactly the fidelity the rule
//! catalogue needs: rules match token *patterns* (`.store(` on a
//! hand-off field with a `Relaxed` argument, `unsafe {` without a
//! preceding `SAFETY:` comment, …) and never confuse code with comment
//! or string contents the way the old regex pass could have.
//!
//! Handled faithfully: line (`//`) and nested block (`/* */`) comments,
//! string/byte/raw-string literals (`"…"`, `b"…"`, `r#"…"#`, …), char
//! literals vs. lifetimes (`'a'` vs. `'a`), numeric literals, idents,
//! and single-char punctuation. Every token carries its 1-based line.

/// Kind of one lexed token. String/char/number payloads are not kept —
/// no rule inspects literal contents, only their presence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, …).
    Ident(String),
    /// One punctuation character (`.`, `(`, `<`, `#`, …).
    Punct(char),
    /// String literal of any flavour (plain/byte/raw/C).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base/suffix).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an ident.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// One comment (line or block). Block comments spanning several lines
/// record the full range so comment-run logic can treat every covered
/// line as commented.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line (== `start_line` for `//` comments).
    pub end_line: u32,
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// The raw source split into lines (for diagnostics' snippets).
    pub lines: Vec<String>,
}

impl Lexed {
    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map_or("", |l| l.as_str().trim())
    }

    /// Whether `line` (1-based) is covered by any comment.
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.start_line <= line && line <= c.end_line)
    }

    /// All comment text covering a 1-based line, concatenated.
    pub fn comment_text_on(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.start_line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }
}

/// Lex `src` into tokens + comments. Never fails: unterminated
/// constructs simply end at EOF (the lint pass runs on code that
/// rustc already accepted, so this is a non-issue in practice).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed {
        lines: src.lines().map(str::to_string).collect(),
        ..Lexed::default()
    };
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `chars[i..j]`, counting newlines.
    macro_rules! bump_to {
        ($j:expr) => {{
            for k in i..$j {
                if b[k] == '\n' {
                    line += 1;
                }
            }
            i = $j;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                start_line: line,
                end_line: line,
                text: b[start..j].iter().collect(),
            });
            bump_to!(j);
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < b.len() && depth > 0 {
                if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    text.push(b[j]);
                    j += 1;
                }
            }
            bump_to!(j);
            out.comments.push(Comment {
                start_line,
                end_line: line,
                text,
            });
            continue;
        }
        // Identifier / keyword — or a raw/byte string prefix.
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let word: String = b[i..j].iter().collect();
            // Raw / byte string prefixes: r"", r#""#, b"", br"", c"", …
            let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_str_prefix && j < b.len() && (b[j] == '"' || b[j] == '#') {
                let raw = word.contains('r') || word.contains('c');
                if raw {
                    // Count hashes, then scan to `"` + same hashes.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < b.len() && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if b.get(k) == Some(&'"') {
                        k += 1;
                        'scan: while k < b.len() {
                            if b[k] == '"' {
                                let mut h = 0usize;
                                while b.get(k + 1 + h) == Some(&'#') {
                                    h += 1;
                                }
                                if h >= hashes {
                                    k += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            k += 1;
                        }
                        let tline = line;
                        bump_to!(k);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            line: tline,
                        });
                        continue;
                    }
                } else {
                    // b"…" with escapes.
                    let tline = line;
                    let k = scan_quoted(&b, j, '"');
                    bump_to!(k);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        line: tline,
                    });
                    continue;
                }
            }
            // b'x' byte char.
            if word == "b" && j < b.len() && b[j] == '\'' {
                let tline = line;
                let k = scan_quoted(&b, j, '\'');
                bump_to!(k);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    line: tline,
                });
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident(word),
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                let float_dot = d == '.' && b.get(j + 1).is_some_and(char::is_ascii_digit);
                if d.is_alphanumeric() || d == '_' || float_dot {
                    j += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                line,
            });
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let tline = line;
            let j = scan_quoted(&b, i, '"');
            bump_to!(j);
            out.toks.push(Tok {
                kind: TokKind::Str,
                line: tline,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                && after != Some('\'')
                // 'a' is a char; 'ab is impossible so ident-char after
                // the first means lifetime ('static).
                || (next.is_some_and(|n| n.is_alphabetic() || n == '_')
                    && b.get(i + 2).is_some_and(|a| a.is_alphanumeric() || *a == '_'));
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    line,
                });
                i = j;
                continue;
            }
            let tline = line;
            let j = scan_quoted(&b, i, '\'');
            bump_to!(j);
            out.toks.push(Tok {
                kind: TokKind::Char,
                line: tline,
            });
            continue;
        }
        // Single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Scan a quoted literal starting at the opening quote `chars[open]`,
/// honouring backslash escapes. Returns the index one past the closing
/// quote (or EOF).
fn scan_quoted(chars: &[char], open: usize, quote: char) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            c if c == quote => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // Ordering::Relaxed\n/* store( */ let y = 2;");
        assert!(idents("let x = 1; // Ordering::Relaxed").contains(&"x".to_string()));
        assert!(!l.toks.iter().any(|t| t.is_ident("Ordering")));
        assert!(!l.toks.iter().any(|t| t.is_ident("store")));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "x.store(1, Ordering::Relaxed)"; s.load(o);"#);
        assert!(!l.toks.iter().any(|t| t.is_ident("store")));
        assert!(l.toks.iter().any(|t| t.is_ident("load")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"unsafe { "quoted" }"#; unsafe {}"##);
        let n = l.toks.iter().filter(|t| t.is_ident("unsafe")).count();
        assert_eq!(n, 1, "only the real unsafe survives");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* a\nb\nc */\nfn f() {}\n\"s\ntr\"\nunsafe {}";
        let l = lex(src);
        let f = l.toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
        let u = l.toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 7);
        assert_eq!(l.comments[0].start_line, 1);
        assert_eq!(l.comments[0].end_line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
        assert!(!l.toks.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn byte_strings() {
        let l = lex(r#"let b = b"store("; let r = br"load(";"#);
        assert!(!l.toks.iter().any(|t| t.is_ident("store")));
        assert!(!l.toks.iter().any(|t| t.is_ident("load")));
    }
}
