//! mtmpi-lint: the workspace's concurrency-contract static analysis.
//!
//! The remedies this repo reproduces — priority arbitration (paper
//! §5), VCI sharding, the lock-free wildcard claim token — stay correct
//! through hand-maintained invariants: Release/Acquire publication on
//! hand-off words, the no-two-shard-locks rule, and the fixed-seed
//! byte-identical replay contract. This crate makes those invariants
//! machine-checked at source level, in the spirit of lockdep: the
//! checker and the code it disciplines live (and evolve) together.
//!
//! # Architecture
//!
//! No `syn`: the build environment is offline and the workspace vendors
//! no external code (see `crates/shims/README.md`), so the engine
//! carries its own token-level front end ([`lexer`]) and a light
//! structural layer ([`source`]: fn items, `#[cfg(test)]` regions,
//! allow comments). Rules ([`rules`]) match token patterns — exact
//! about comments, strings, wrapped method chains, and `compare_
//! exchange` success-vs-failure orderings, everything the old
//! line-regex pass in xtask was fragile about.
//!
//! # Workflow
//!
//! * `cargo run -p xtask -- lint` — full-workspace run, exit 1 on any
//!   finding not in the committed baseline (`crates/lint/baseline.txt`).
//! * `… lint --json` — machine-readable report.
//! * `… lint --update-baseline` — regenerate the baseline (justify
//!   every entry before committing!).
//! * Per-site suppression: `// lint: allow(L002) <why>` on the same or
//!   the preceding line (the legacy `// lint: relaxed-ok` still means
//!   `allow(L001)`).
//!
//! Rule catalogue: see [`rules::RULES`] and DESIGN.md §13. Each rule
//! has a negative fixture under `crates/lint/fixtures/` proving it
//! fires; `tests/rules.rs` pins the exact sites.

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::Diagnostic;
pub use engine::{run, update_baseline, Report, BASELINE_PATH};
pub use source::SourceFile;
