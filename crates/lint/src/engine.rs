//! The workspace engine: file discovery, rule orchestration, allow
//! application, baseline matching, and report rendering.

use crate::baseline::{self, BaselineEntry};
use crate::diag::Diagnostic;
use crate::rules::{self, CsContext, L003_SCOPE};
use crate::source::SourceFile;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Location of the committed baseline, relative to the workspace root.
pub const BASELINE_PATH: &str = "crates/lint/baseline.txt";

/// Directory subtrees never scanned (deliberate violations live in the
/// fixtures; `target/` is build output).
const EXCLUDED: &[&str] = &["crates/lint/fixtures", "target"];

/// Roots scanned for `.rs` sources, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "xtask/src", "tests", "examples"];

/// The lint run's outcome.
#[derive(Debug)]
pub struct Report {
    pub files_scanned: usize,
    /// Diagnostics not covered by the baseline — these fail the run.
    pub fresh: Vec<Diagnostic>,
    /// Diagnostics matched (and silenced) by baseline entries.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries that matched nothing — prune them.
    pub stale: Vec<BaselineEntry>,
}

impl Report {
    /// Whether the run passes (no unbaselined findings).
    pub fn ok(&self) -> bool {
        self.fresh.is_empty()
    }

    /// Human-readable rendering (one diagnostic per line, summary last).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.fresh {
            let _ = writeln!(out, "{d}");
        }
        for e in &self.stale {
            let _ = writeln!(
                out,
                "warning: stale baseline entry {} {:016x} {} :: {}",
                e.rule, e.fingerprint, e.path, e.snippet
            );
        }
        let _ = writeln!(
            out,
            "mtmpi-lint: {} files, {} finding(s) ({} baselined, {} stale baseline entr{})",
            self.files_scanned,
            self.fresh.len(),
            self.baselined.len(),
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        );
        out
    }

    /// Machine-readable rendering (RFC 8259, hand-built — the workspace
    /// carries no JSON dependency).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"rules\":[");
        for (i, r) in rules::RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"summary\":\"{}\"}}",
                r.id,
                crate::diag::json_escape(r.summary)
            );
        }
        out.push_str("],\"diagnostics\":[");
        let mut first = true;
        for (d, baselined) in self
            .fresh
            .iter()
            .map(|d| (d, false))
            .chain(self.baselined.iter().map(|d| (d, true)))
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&d.to_json(baselined));
        }
        let _ = write!(
            out,
            "],\"summary\":{{\"files\":{},\"fresh\":{},\"baselined\":{},\"stale\":{}}}}}",
            self.files_scanned,
            self.fresh.len(),
            self.baselined.len(),
            self.stale.len()
        );
        out
    }
}

/// Collect `.rs` files under `dir` recursively, sorted, skipping
/// excluded subtrees.
fn rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDED.iter().any(|e| rel.starts_with(e)) {
            continue;
        }
        if p.is_dir() {
            rust_files(root, &p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Parse every scanned source file under `root`.
pub fn load_workspace(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        rust_files(root, &root.join(scan), &mut files);
    }
    files
        .iter()
        .filter_map(|p| {
            let src = std::fs::read_to_string(p).ok()?;
            let rel = p.strip_prefix(root).unwrap_or(p);
            Some(SourceFile::parse(rel, &src))
        })
        .collect()
}

/// Run the full rule catalogue over already-parsed files, applying
/// allow comments but NOT the baseline (callers decide).
pub fn check_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    // L003's interprocedural context: fixpoint over the scoped crate.
    let scoped: Vec<&SourceFile> = files
        .iter()
        .filter(|f| rules::in_scope(&f.path, L003_SCOPE))
        .collect();
    let cs: CsContext = rules::cs_entering_fns(&scoped);
    let mut diags = Vec::new();
    for f in files {
        diags.extend(
            rules::check_file(f, &cs)
                .into_iter()
                .filter(|d| !f.allowed(d.rule, d.line)),
        );
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

/// Run the engine over the workspace at `root` against its committed
/// baseline. `Err` only on a corrupt baseline file.
pub fn run(root: &Path) -> Result<Report, String> {
    let files = load_workspace(root);
    let diags = check_files(&files);
    let baseline_text = std::fs::read_to_string(root.join(BASELINE_PATH)).unwrap_or_default();
    let entries = baseline::parse(&baseline_text)?;
    let (fresh, baselined, stale) = baseline::apply(diags, &entries);
    Ok(Report {
        files_scanned: files.len(),
        fresh,
        baselined,
        stale,
    })
}

/// Regenerate the baseline from the current tree (allow comments still
/// applied) and write it to [`BASELINE_PATH`]. Returns the entry count.
pub fn update_baseline(root: &Path) -> std::io::Result<usize> {
    let files = load_workspace(root);
    let diags = check_files(&files);
    std::fs::write(root.join(BASELINE_PATH), baseline::render(&diags))?;
    Ok(diags.len())
}
