//! Diagnostics: the engine's output unit, with stable fingerprints for
//! baselining and text/JSON renderings.

/// One finding of one rule at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`L001` … `L006`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line of the offending site.
    pub line: u32,
    /// What is wrong (one sentence, no trailing period).
    pub msg: String,
    /// The trimmed source line, for humans and for the fingerprint.
    pub snippet: String,
}

impl Diagnostic {
    /// Stable identity for baseline matching: rule + path + the
    /// whitespace-normalised snippet, FNV-1a hashed. Deliberately
    /// line-number-free so unrelated edits moving a baselined site up
    /// or down the file do not churn the baseline.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.rule.as_bytes());
        eat(b"|");
        eat(self.path.as_bytes());
        eat(b"|");
        // Collapse runs of whitespace so rustfmt churn doesn't move
        // fingerprints.
        let mut prev_space = false;
        for ch in self.snippet.trim().chars() {
            if ch.is_whitespace() {
                if !prev_space {
                    eat(b" ");
                }
                prev_space = true;
            } else {
                let mut buf = [0u8; 4];
                eat(ch.encode_utf8(&mut buf).as_bytes());
                prev_space = false;
            }
        }
        h
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.path, self.line, self.rule, self.msg, self.snippet
        )
    }
}

/// Minimal JSON string escape (the workspace carries no JSON
/// dependency; same convention as mtmpi-obs' exporters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// One JSON object (no trailing newline).
    pub fn to_json(&self, baselined: bool) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"msg\":\"{}\",\"snippet\":\"{}\",\"fingerprint\":\"{:016x}\",\"baselined\":{}}}",
            self.rule,
            json_escape(&self.path),
            self.line,
            json_escape(&self.msg),
            json_escape(&self.snippet),
            self.fingerprint(),
            baselined
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            msg: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn fingerprint_ignores_line_and_whitespace() {
        let a = d("L001", "a.rs", 10, "x.store(1,  Relaxed)");
        let b = d("L001", "a.rs", 99, "x.store(1, Relaxed)");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_rule_path_snippet() {
        let base = d("L001", "a.rs", 1, "x.store(1, Relaxed)");
        assert_ne!(
            base.fingerprint(),
            d("L002", "a.rs", 1, "x.store(1, Relaxed)").fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            d("L001", "b.rs", 1, "x.store(1, Relaxed)").fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            d("L001", "a.rs", 1, "y.store(1, Relaxed)").fingerprint()
        );
    }

    #[test]
    fn json_escaping() {
        let x = d("L006", "a.rs", 1, "let s = \"q\";");
        let j = x.to_json(false);
        assert!(j.contains("\\\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
