//! L005 — panic/unwrap/expect on paths with typed `MpiError` equivalents.
//!
//! PR 4 replaced liveness panics with typed errors: the `try_wait`
//! family returns `Result<_, MpiError>` and cancels doomed requests
//! leak-free. Two anti-patterns silently undo that work:
//!
//! 1. a `panic!`/`unwrap()`/`expect(` *inside* a `try_*` function —
//!    the typed path itself panicking on what should be an `Err`;
//! 2. `.try_xxx(…).unwrap()` / `.expect(` chains at call sites —
//!    requesting the typed error and then crashing on it anyway (use
//!    the panicking wrapper (`wait`) if that is really what you want;
//!    it at least keeps the legacy diagnostic message).
//!
//! Invariant assertions that cannot be reached by fault escalation
//! (e.g. "wait on a freed request is a caller bug") are legitimate:
//! mark them `// lint: allow(L005) <why>`. Test regions are exempt.

use crate::diag::Diagnostic;
use crate::source::{matching, SourceFile};

/// std `try_*` methods with their own error types and no `MpiError`
/// equivalent: `try_into().expect("8 bytes")` on a slice-to-array
/// conversion is an infallible-by-construction idiom, not a typed
/// runtime path being crashed on.
const STD_TRY: &[&str] = &[
    "try_into",
    "try_from",
    "try_fold",
    "try_for_each",
    "try_reserve",
    "try_reserve_exact",
    "try_borrow",
    "try_borrow_mut",
    "try_clone",
    "try_exists",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    let mut diag = |line: u32, msg: String| {
        out.push(Diagnostic {
            rule: "L005",
            path: file.path.clone(),
            line,
            msg,
            snippet: file.lexed.line_text(line).to_string(),
        });
    };

    // 1. Panic machinery inside `fn try_*` bodies.
    for f in &file.fns {
        if !f.name.starts_with("try_")
            || STD_TRY.contains(&f.name.as_str())
            || file.in_test_region(f.body.0)
        {
            continue;
        }
        let (open, close) = f.body;
        for i in open..=close {
            let Some(w) = toks[i].ident() else { continue };
            let flagged = match w {
                "panic" => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
                "unwrap" | "expect" => {
                    i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                }
                _ => false,
            };
            if flagged {
                diag(
                    toks[i].line,
                    format!(
                        "`{w}` inside `{}` — typed-error path must return MpiError, not panic",
                        f.name
                    ),
                );
            }
        }
    }

    // 2. `.try_*(…).unwrap()` / `.expect(` chains anywhere in scope.
    for i in 0..toks.len() {
        if file.in_test_region(i) {
            continue;
        }
        let is_try_call = toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|n| n.starts_with("try_") && !STD_TRY.contains(&n))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
        if !is_try_call {
            continue;
        }
        let close = matching(toks, i + 2);
        let chained = toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(close + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| m == "unwrap" || m == "expect");
        if chained {
            let name = toks[i + 1].ident().unwrap_or("try_*");
            let line = toks[close + 2].line;
            diag(
                line,
                format!(
                    "`{name}(…).{}()` discards the typed MpiError — propagate it or use the \
                     panicking wrapper",
                    toks[close + 2].ident().unwrap_or("unwrap")
                ),
            );
        }
    }
    out
}
