//! L003 — nested critical-section entry: the two-shard-lock ban.
//!
//! The VCI design (DESIGN.md §12) is deadlock-free *by discipline*, not
//! by ordering: **no thread ever holds two shard locks**. Cross-shard
//! hand-offs go through the lock-free claim token instead. This rule
//! flags any code that can enter a second critical section while one is
//! held:
//!
//! 1. a direct `cs`/`cs_on`/`lock_acquire`/`progress_lock` call inside
//!    the argument extent (i.e. the state closure) of an enclosing
//!    `cs`/`cs_on` call, and
//! 2. interprocedurally, a *free-function* call inside that closure to
//!    any function that (transitively) enters a critical section —
//!    computed as a fixpoint over the scoped crate's call graph. Only
//!    free calls propagate: the runtime's in-CS helpers are free
//!    functions by convention, and method names (`get`, `put`, …)
//!    collide with std-container methods on a name-based graph.
//!
//! The split progress lock (`progress_lock` → queue CS in PerQueue
//! granularity) is an *ordered* two-tier hold checked dynamically by
//! mtmpi-check's lockdep; it does not route through `cs`'s closure, so
//! it does not trip this rule.

use crate::diag::Diagnostic;
use crate::source::{matching, SourceFile};
use std::collections::BTreeSet;

/// The primitive entry points into a shard's critical section.
const PRIMITIVES: &[&str] = &["cs", "cs_on", "lock_acquire", "progress_lock"];

/// Cross-file context: the names of functions known to (transitively)
/// enter a critical section.
#[derive(Debug, Default)]
pub struct CsContext {
    pub entering: BTreeSet<String>,
}

impl CsContext {
    /// Whether a call to `name` enters a CS. Primitives count in either
    /// call form; non-primitive names only as *free* calls, because the
    /// name-based graph cannot distinguish `state.get()` (a std-container
    /// method) from the RMA `fn get` that takes the CS — method-name
    /// collisions would otherwise mark half the crate as entering. The
    /// runtime's in-CS helpers are free functions by convention, so free
    /// calls are exactly the edges worth following.
    fn enters(&self, name: &str, method: bool) -> bool {
        PRIMITIVES.contains(&name) || (!method && self.entering.contains(name))
    }
}

/// Whether `toks[i]` begins a call: `name(` as a free call or `.name(`
/// as a method call (index `i` is the name ident itself). Returns the
/// callee name and whether it was method-style.
fn call_at(file: &SourceFile, i: usize) -> Option<(&str, bool)> {
    let toks = file.toks();
    let name = toks[i].ident()?;
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if i > 0 && toks[i - 1].is_ident("fn") {
        return None;
    }
    let method = i > 0 && toks[i - 1].is_punct('.');
    Some((name, method))
}

/// Fixpoint over one crate's files: the set of function names whose
/// bodies (transitively) reach a CS primitive. Name-based, so two
/// same-named functions merge — conservative in the flagging direction,
/// which is what a lint wants.
pub fn cs_entering_fns(files: &[&SourceFile]) -> CsContext {
    let mut ctx = CsContext::default();
    loop {
        let mut grew = false;
        for file in files {
            for f in &file.fns {
                if ctx.entering.contains(&f.name) {
                    continue;
                }
                let (open, close) = f.body;
                let directly_enters = (open..=close).any(|i| {
                    call_at(file, i)
                        .is_some_and(|(name, method)| name != f.name && ctx.enters(name, method))
                });
                if directly_enters {
                    ctx.entering.insert(f.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            return ctx;
        }
    }
}

pub fn check(file: &SourceFile, ctx: &CsContext) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    // Outer CS entries: `.cs(` / `.cs_on(` method calls whose argument
    // extent carries the state closure.
    for i in 0..toks.len() {
        let is_outer = toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|n| n == "cs" || n == "cs_on")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
        if !is_outer {
            continue;
        }
        let close = matching(toks, i + 2);
        let mut j = i + 3;
        while j < close {
            if let Some((name, method)) = call_at(file, j) {
                let inner_primitive = PRIMITIVES.contains(&name) && method;
                let inner_fn = !method && ctx.entering.contains(name);
                if inner_primitive || inner_fn {
                    let line = toks[j].line;
                    out.push(Diagnostic {
                        rule: "L003",
                        path: file.path.clone(),
                        line,
                        msg: format!(
                            "`{name}` can enter a second critical section inside a `{}` closure \
                             (no thread may hold two shard locks)",
                            toks[i + 1].ident().unwrap_or("cs")
                        ),
                        snippet: file.lexed.line_text(line).to_string(),
                    });
                }
            }
            j += 1;
        }
    }
    out
}
