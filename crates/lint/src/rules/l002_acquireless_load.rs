//! L002 — Acquire-less (`Relaxed`) load of cross-thread-published state.
//!
//! The read side of L001's contract: consuming a claim token, the
//! multi-request `ready` flag, seq/ack words, or a lock hand-off field
//! with `Ordering::Relaxed` misses the Acquire that pairs with the
//! publisher's Release, so the data "published before" the flag may not
//! be visible yet. Deliberate relaxed *peeks* (TTAS fast paths,
//! monitoring reads, `Drop` with `&mut self`) are fine — mark them with
//! `// lint: allow(L002) <why>`.

use super::l001_relaxed_handoff::HANDOFF_FIELDS;
use crate::diag::Diagnostic;
use crate::source::{matching, orderings_in, receiver_field, SourceFile};

/// Published-state fields beyond the hand-off set: per-link sequence /
/// cumulative-ack words and mailbox flags, should they ever become
/// atomics read outside the shard CS.
const EXTRA_PUBLISHED: &[&str] = &["seq", "ack", "mail_ready"];

fn published(field: &str) -> bool {
    HANDOFF_FIELDS.contains(&field) || EXTRA_PUBLISHED.contains(&field)
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.')
            || !toks.get(i + 1).is_some_and(|t| t.is_ident("load"))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(field) = receiver_field(toks, i) else {
            continue;
        };
        if !published(field) {
            continue;
        }
        let close = matching(toks, i + 2);
        if orderings_in(&toks[i + 2..=close]).contains(&"Relaxed") {
            let line = toks[i].line;
            out.push(Diagnostic {
                rule: "L002",
                path: file.path.clone(),
                line,
                msg: format!("Relaxed load of published field `{field}` (missing Acquire edge)"),
                snippet: file.lexed.line_text(line).to_string(),
            });
        }
    }
    out
}
