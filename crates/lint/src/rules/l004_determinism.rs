//! L004 — nondeterminism sources in the deterministic core crates.
//!
//! The replay contract (DESIGN.md §11/§12, enforced byte-for-byte by
//! the faults/vci CI smoke jobs) requires every run-affecting input in
//! `sim`/`runtime`/`net`/`vci`/`locks` to derive from the seed and the
//! virtual clock. Banned in production code there:
//!
//! * wall-clock reads: `Instant::now`, `SystemTime` (any use);
//! * OS entropy: `thread_rng`, `rand::random`, `from_entropy`;
//! * hash-order iteration: `.iter()`/`.keys()`/`.values()`/`.drain()`/
//!   `.retain()`/`.into_iter()`/`for … in` over a binding whose
//!   declared type (in the same file) is `HashMap`/`HashSet`.
//!   Membership ops (`insert`/`remove`/`contains`/`get`/`entry`) are
//!   deterministic and stay legal — switch to `BTreeMap`/`BTreeSet` if
//!   you need to iterate in an output path.
//!
//! `#[cfg(test)]`/`#[test]` regions are exempt. The native (wall-clock)
//! platform backend is the intended allowlist user:
//! `// lint: allow(L004) native backend measures real time by design`.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Iteration methods whose order is the hasher's, not the program's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    let mut diag = |line: u32, msg: String| {
        out.push(Diagnostic {
            rule: "L004",
            path: file.path.clone(),
            line,
            msg,
            snippet: file.lexed.line_text(line).to_string(),
        });
    };

    // `use` statement extents: imports don't execute — a file may
    // import `SystemTime` solely for its `#[cfg(test)]` module. Uses
    // are flagged where they run, not where they are named.
    let mut use_ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("use") {
            let end = (i + 1..toks.len())
                .find(|&j| toks[j].is_punct(';'))
                .unwrap_or(toks.len() - 1);
            use_ranges.push((i, end));
        }
    }
    let in_use = |i: usize| use_ranges.iter().any(|&(a, b)| a <= i && i <= b);

    // Pass 1: banned calls/types by name.
    for i in 0..toks.len() {
        if file.in_test_region(i) || in_use(i) {
            continue;
        }
        let Some(w) = toks[i].ident() else { continue };
        match w {
            "Instant"
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("now")) =>
            {
                diag(
                    toks[i].line,
                    "wall-clock `Instant::now` in a deterministic crate (use the virtual clock)"
                        .to_string(),
                );
            }
            "SystemTime" => diag(
                toks[i].line,
                "`SystemTime` in a deterministic crate (derive time from the virtual clock)"
                    .to_string(),
            ),
            "thread_rng" | "from_entropy" => diag(
                toks[i].line,
                format!("OS entropy via `{w}` in a deterministic crate (seed a SmallRng instead)"),
            ),
            "random" if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 3].is_ident("rand") => {
                diag(
                    toks[i].line,
                    "OS entropy via `rand::random` in a deterministic crate".to_string(),
                );
            }
            _ => {}
        }
    }

    // Pass 2: hash-order iteration over HashMap/HashSet bindings.
    let hashed = hashed_bindings(file);
    if hashed.is_empty() {
        return out;
    }
    for i in 0..toks.len() {
        if file.in_test_region(i) {
            continue;
        }
        // `.method(` on a hashed receiver.
        if toks[i].is_punct('.') && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(m) = toks.get(i + 1).and_then(|t| t.ident()) {
                if ITER_METHODS.contains(&m) {
                    if let Some(field) = crate::source::receiver_field(toks, i) {
                        if hashed.contains(field) {
                            diag(
                                toks[i].line,
                                format!(
                                    "hash-order iteration (`.{m}()`) over `{field}` \
                                     ({}) — order is per-process, not per-seed",
                                    "HashMap/HashSet"
                                ),
                            );
                        }
                    }
                }
            }
        }
        // `for pat in [&[mut]] <chain ending in a hashed name> {`.
        // Regions containing a call (`(`) are left to the method pass
        // above, so `for k in map.keys()` is not double-flagged.
        if toks[i].is_ident("for") {
            let in_pos = (i + 1..toks.len().min(i + 40)).find(|&j| toks[j].is_ident("in"));
            if let Some(in_pos) = in_pos {
                let mut j = in_pos + 1;
                let mut last_ident: Option<&str> = None;
                let mut has_call = false;
                while j < toks.len() && j < in_pos + 30 && !toks[j].is_punct('{') {
                    match &toks[j].kind {
                        TokKind::Punct('(') => has_call = true,
                        TokKind::Ident(w) if w != "mut" => last_ident = Some(w),
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(name) = last_ident {
                    if !has_call && hashed.contains(name) {
                        diag(
                            toks[i].line,
                            format!(
                                "hash-order `for` iteration over `{name}` (HashMap/HashSet) — \
                                 order is per-process, not per-seed"
                            ),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Names bound to `HashMap`/`HashSet` anywhere in the file: struct
/// fields / params with an ascribed hash type, and `let` bindings
/// initialised from `HashMap::…`/`HashSet::…`.
fn hashed_bindings(file: &SourceFile) -> BTreeSet<String> {
    let toks = file.toks();
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        // `name: …HashMap/HashSet…` — scan the type region up to a
        // statement/field boundary at angle-depth zero.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < toks.len() && j < i + 40 {
                match &toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct(',' | ';' | '=' | '{' | ')') if angle <= 0 => break,
                    TokKind::Ident(t) if t == "HashMap" || t == "HashSet" => {
                        out.insert(name.clone());
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `let [mut] name = …HashMap/HashSet::…ctor…;`
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(TokKind::Ident(bound)) = toks.get(k).map(|t| &t.kind) {
                if toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
                    let mut j = k + 2;
                    while j < toks.len() && j < k + 20 && !toks[j].is_punct(';') {
                        if toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet") {
                            out.insert(bound.clone());
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
    }
    out
}
