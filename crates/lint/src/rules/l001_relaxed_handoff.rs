//! L001 — `Relaxed` mutation of a lock hand-off or claim-token field.
//!
//! The store (or RMW) that transfers ownership — a ticket lock's
//! `now_serving`, a TAS flag, an MCS `next`/`tail` pointer, the VCI
//! wildcard claim token, the multi-request `ready` flag — is the
//! Release half of the edge that makes the critical section's writes
//! visible to the next owner. `Ordering::Relaxed` there is a missing
//! Release: the successor can acquire the lock yet read stale data.
//! This rule is the engine descendant of the original `xtask lint`
//! regex pass, now token-accurate and workspace-wide.

use crate::diag::Diagnostic;
use crate::source::{effective_relaxed, matching, receiver_field, SourceFile};

/// Fields through which lock ownership or a cross-shard completion is
/// transferred. (The monitoring-only `last_poll_ns` is deliberately
/// absent: it is documented as never carrying a hand-off.)
pub const HANDOFF_FIELDS: &[&str] = &[
    "now_serving",     // ticket / priority ticket grant counter
    "locked",          // TAS/TTAS flag, MCS node spin flag
    "state",           // futex mutex word
    "tail",            // MCS/CLH queue tail
    "next",            // MCS successor pointer
    "already_blocked", // priority lock's burst hand-off flag
    "grant",           // generic grant words
    "claim",           // VCI wildcard claim token (NONE→COMPLETER/CANCELLER)
    "ready",           // multi-request completion publication flag
    "stream_owner",    // stream claim word (bind CAS / unbind Release)
    "published",       // recorder shard watermark (event slots → reader)
    "tenant_state",    // serve tenant cell word (Idle→Pending→Running)
];

/// Mutating atomic operations. Loads are L002's concern.
const MUTATING_OPS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // Pattern: `.` <mutating-op> `(` … `)` with a hand-off receiver
        // and an effective Relaxed ordering.
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(op) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !MUTATING_OPS.contains(&op) || !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(field) = receiver_field(toks, i) else {
            continue;
        };
        if !HANDOFF_FIELDS.contains(&field) {
            continue;
        }
        let close = matching(toks, i + 2);
        let is_cas = op.starts_with("compare_exchange");
        if effective_relaxed(&toks[i + 2..=close], is_cas) {
            let line = toks[i].line;
            out.push(Diagnostic {
                rule: "L001",
                path: file.path.clone(),
                line,
                msg: format!("Relaxed `{op}` on hand-off field `{field}` (missing Release edge)"),
                snippet: file.lexed.line_text(line).to_string(),
            });
        }
    }
    out
}
