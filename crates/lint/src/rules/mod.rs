//! The rule catalogue. Each rule is a function from a parsed
//! [`SourceFile`] (plus, for L003, cross-file context) to diagnostics;
//! the engine applies path scoping, allow comments, and the baseline.
//!
//! | id   | guards                                                        |
//! |------|---------------------------------------------------------------|
//! | L001 | no `Relaxed` mutation of lock hand-off / claim-token fields   |
//! | L002 | no `Relaxed` (Acquire-less) load of cross-thread published state |
//! | L003 | no nested critical-section entry (the two-shard-lock ban)     |
//! | L004 | no nondeterminism sources in the deterministic core crates    |
//! | L005 | no panic/unwrap/expect on typed-error (`try_*`) paths         |
//! | L006 | no `unsafe` block/impl without a `// SAFETY:` comment         |

use crate::diag::Diagnostic;
use crate::source::SourceFile;

mod l001_relaxed_handoff;
mod l002_acquireless_load;
mod l003_nested_cs;
mod l004_determinism;
mod l005_panic_paths;
mod l006_undocumented_unsafe;

pub use l003_nested_cs::{cs_entering_fns, CsContext};

/// Static description of one rule, for `--json` output and DESIGN.md.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The full catalogue, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        summary: "Relaxed store/RMW on a lock hand-off or claim-token field breaks the \
                  Release edge that publishes the critical section's writes",
    },
    RuleInfo {
        id: "L002",
        summary: "Relaxed load of cross-thread-published state (claim token, ready flag, \
                  seq/ack, hand-off words) misses the Acquire edge pairing the publisher's \
                  Release",
    },
    RuleInfo {
        id: "L003",
        summary: "entering a second critical section while one is held — the no-two-shard-locks \
                  ban that keeps the VCI fan-out deadlock-free",
    },
    RuleInfo {
        id: "L004",
        summary: "nondeterminism source (wall clock, OS entropy, hash-order iteration) in the \
                  deterministic-replay core crates",
    },
    RuleInfo {
        id: "L005",
        summary: "panic!/unwrap/expect on a runtime path that has a typed MpiError equivalent \
                  (the try_* family)",
    },
    RuleInfo {
        id: "L006",
        summary: "unsafe block or unsafe impl without a `// SAFETY:` comment",
    },
];

/// Run every rule applicable to `file` (path scoping included),
/// returning raw diagnostics — allow comments and the baseline are
/// applied by the engine, not here, so tests can see everything.
pub fn check_file(file: &SourceFile, cs: &CsContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(l001_relaxed_handoff::check(file));
    out.extend(l002_acquireless_load::check(file));
    if in_scope(&file.path, L003_SCOPE) {
        out.extend(l003_nested_cs::check(file, cs));
    }
    if in_scope(&file.path, L004_SCOPE) {
        out.extend(l004_determinism::check(file));
    }
    if in_scope(&file.path, L005_SCOPE) {
        out.extend(l005_panic_paths::check(file));
    }
    out.extend(l006_undocumented_unsafe::check(file));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Crates whose source is bound by the determinism contract (DESIGN.md
/// §11/§12): fixed seed ⇒ byte-identical replay.
pub const L004_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/runtime/src/",
    "crates/net/src/",
    "crates/vci/src/",
    "crates/locks/src/",
];

/// Crates with typed `MpiError` paths (the `try_*` family).
pub const L005_SCOPE: &[&str] = &["crates/runtime/src/", "crates/vci/src/"];

/// The critical-section discipline lives in the runtime.
pub const L003_SCOPE: &[&str] = &["crates/runtime/src/"];

/// Whether `path` (workspace-relative, `/`-separated) falls under one
/// of the scope prefixes.
pub fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}
