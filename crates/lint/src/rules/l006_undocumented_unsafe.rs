//! L006 — `unsafe` without a `// SAFETY:` comment, workspace-wide.
//!
//! The workspace lints table already warns on undocumented unsafe
//! blocks (`clippy::undocumented_unsafe_blocks`) — but only in the
//! crates that opted into `[lints] workspace = true`. This rule closes
//! the gap for the rest (stencil, core, sim, net, bench, …) with one
//! workspace-wide policy, and extends it to `unsafe impl` (every
//! `Send`/`Sync` assertion must state its aliasing argument; the
//! two-line tolerance below lets adjacent impls share one comment run,
//! though separate comments per impl are the house style).
//!
//! Accepted placements: a comment containing `SAFETY` on the same line
//! as the `unsafe` token, or a comment run ending on one of the two
//! preceding lines (two, so `// SAFETY: …` above a wrapped `let … =
//! unsafe {` statement still counts).

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Whether a SAFETY comment covers an `unsafe` token on `line`.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let lx = &file.lexed;
    // Same line.
    if lx.comment_text_on(line).contains("SAFETY") {
        return true;
    }
    // A comment run ending at line-1 or line-2 (scan the run upward).
    for start in [line.saturating_sub(1), line.saturating_sub(2)] {
        if start == 0 || !lx.line_has_comment(start) {
            continue;
        }
        let mut l = start;
        loop {
            if lx.comment_text_on(l).contains("SAFETY") {
                return true;
            }
            if l <= 1 || !lx.line_has_comment(l - 1) {
                break;
            }
            l -= 1;
        }
    }
    false
}

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = file.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") {
            continue;
        }
        // `unsafe fn` / `unsafe trait` declare a contract; the
        // *discharge* sites (blocks, impls) carry the proof.
        let next = toks.get(i + 1);
        let site = if next.is_some_and(|t| t.is_punct('{')) {
            "unsafe block"
        } else if next.is_some_and(|t| t.is_ident("impl")) {
            "unsafe impl"
        } else {
            continue;
        };
        let line = toks[i].line;
        if !has_safety_comment(file, line) {
            out.push(Diagnostic {
                rule: "L006",
                path: file.path.clone(),
                line,
                msg: format!("{site} without a `// SAFETY:` comment"),
                snippet: file.lexed.line_text(line).to_string(),
            });
        }
    }
    out
}
