//! The committed baseline: known findings that are accepted (with a
//! written justification) rather than fixed or allow-commented.
//!
//! Format (one entry per line, `#` lines are comments — put the
//! justification in a comment block directly above its entry):
//!
//! ```text
//! # try_waitall's terminal expect is an invariant, not an error path:
//! # every request was verified complete in the loop above.
//! L005 f00d1234abcd5678 crates/runtime/src/p2p.rs :: m.expect("all completed")
//! ```
//!
//! Matching is by `(rule, fingerprint)` — see
//! [`crate::Diagnostic::fingerprint`]; the path and snippet are carried
//! for human readers and regenerated on `--update-baseline`. Entries
//! that no longer match anything are reported as *stale* (a warning,
//! not a failure: the fix that removes a finding should also prune its
//! entry, and the warning is the reminder).

use crate::diag::Diagnostic;
use std::fmt::Write as _;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub fingerprint: u64,
    pub path: String,
    pub snippet: String,
}

/// Parse the baseline file's text. Unparseable non-comment lines are
/// returned as errors (a corrupt baseline must not silently accept
/// findings).
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, snippet) = line
            .split_once(" :: ")
            .ok_or_else(|| format!("baseline line {}: missing ` :: ` separator", n + 1))?;
        let mut parts = head.split_whitespace();
        let (Some(rule), Some(fp), Some(path), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `RULE FINGERPRINT PATH :: snippet`",
                n + 1
            ));
        };
        let fingerprint = u64::from_str_radix(fp, 16)
            .map_err(|_| format!("baseline line {}: bad fingerprint {fp:?}", n + 1))?;
        out.push(BaselineEntry {
            rule: rule.to_string(),
            fingerprint,
            path: path.to_string(),
            snippet: snippet.to_string(),
        });
    }
    Ok(out)
}

/// Render a fresh baseline for `diags` under a standard header. The
/// caller is expected to re-add justification comments by hand — the
/// tool writes a `# TODO justify` marker above each entry to make an
/// unjustified refresh obvious in review.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# mtmpi-lint baseline — accepted findings, one per line.\n\
         # Format: RULE FINGERPRINT PATH :: snippet\n\
         # Every entry MUST carry a justification comment above it.\n\
         # Refresh with `cargo run -p xtask -- lint --update-baseline`\n\
         # (then restore/write the justifications before committing).\n",
    );
    for d in diags {
        let _ = write!(
            out,
            "\n# TODO justify\n{} {:016x} {} :: {}\n",
            d.rule,
            d.fingerprint(),
            d.path,
            d.snippet
        );
    }
    out
}

/// Split `diags` into (fresh, baselined) against `entries`, and return
/// the stale entries third. An entry may match several diagnostics
/// (e.g. an identical snippet appearing twice in one file) — all of
/// them are baselined by the one entry.
pub fn apply(
    diags: Vec<Diagnostic>,
    entries: &[BaselineEntry],
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<BaselineEntry>) {
    let mut fresh = Vec::new();
    let mut baselined = Vec::new();
    let mut used = vec![false; entries.len()];
    for d in diags {
        let fp = d.fingerprint();
        match entries
            .iter()
            .position(|e| e.rule == d.rule && e.fingerprint == fp)
        {
            Some(i) => {
                used[i] = true;
                baselined.push(d);
            }
            None => fresh.push(d),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (fresh, baselined, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            msg: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn round_trip() {
        let diags = vec![d("L001", "x.store(1, Relaxed)"), d("L005", "y.unwrap()")];
        let text = render(&diags);
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 2);
        let (fresh, baselined, stale) = apply(diags, &entries);
        assert!(fresh.is_empty());
        assert_eq!(baselined.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn fresh_and_stale_are_separated() {
        let old = render(&[d("L001", "x.store(1, Relaxed)")]);
        let entries = parse(&old).unwrap();
        let now = vec![d("L001", "z.store(1, Relaxed)")];
        let (fresh, baselined, stale) = apply(now, &entries);
        assert_eq!(fresh.len(), 1);
        assert!(baselined.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn corrupt_lines_error() {
        assert!(parse("L001 zzzz p :: s").is_err());
        assert!(parse("not an entry").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn snippet_change_invalidates() {
        let old = render(&[d("L001", "x.store(1, Relaxed)")]);
        let entries = parse(&old).unwrap();
        let (fresh, ..) = apply(vec![d("L001", "x.store(2, Relaxed)")], &entries);
        assert_eq!(fresh.len(), 1, "edited site must resurface");
    }
}
