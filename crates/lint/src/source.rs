//! Structural view of one lexed file: function items, `#[cfg(test)]`
//! regions, per-site allow comments, and the token-walk helpers the
//! rules share (matching delimiters, receiver-chain field extraction,
//! `Ordering` argument classification).

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::path::Path;

/// One `fn` item: its name and the token span of its body block
/// (`body.0` is the index of the `{`, `body.1` of the matching `}`).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub body: (usize, usize),
}

/// A per-site suppression parsed from a comment:
/// `// lint: allow(L004) justification…` (several ids may be listed,
/// comma-separated). The legacy `// lint: relaxed-ok` form is accepted
/// as `allow(L001)`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment covers. A diagnostic on this line or
    /// the immediately following one is suppressed.
    pub line: u32,
    pub rules: Vec<String>,
    /// Free-text justification following the rule list (may be empty —
    /// the fixture tests and review culture, not the engine, enforce
    /// writing one).
    pub justification: String,
}

/// One parsed source file, ready for the rule catalogue.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms — it feeds diagnostics and baseline fingerprints).
    pub path: String,
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
    /// Token-index ranges (inclusive `{`..`}`) under `#[cfg(test)]` or
    /// `#[test]` — rules about production determinism/error paths skip
    /// these.
    pub test_regions: Vec<(usize, usize)>,
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Parse one file's source text.
    pub fn parse(path: &Path, src: &str) -> Self {
        let lexed = lex(src);
        let fns = collect_fns(&lexed.toks);
        let test_regions = collect_test_regions(&lexed.toks);
        let allows = collect_allows(&lexed);
        Self {
            path: path.to_string_lossy().replace('\\', "/"),
            lexed,
            fns,
            test_regions,
            allows,
        }
    }

    /// Whether the token at `idx` lies inside a `#[cfg(test)]`/`#[test]`
    /// region.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| a <= idx && idx <= b)
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed by an
    /// allow comment on the same or the preceding line.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// The innermost `fn` whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= idx && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }
}

/// Index of the delimiter matching the opener at `open` (`(`↔`)`,
/// `{`↔`}`, `[`↔`]`). Returns the last token index if unbalanced.
pub fn matching(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('{') => ('{', '}'),
        TokKind::Punct('[') => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Walk backwards from `end` (exclusive) over a field/method receiver
/// chain (`self.now_serving.0`, `shards[vci].last_poll_ns`, …) and
/// return the *field name* the chain ends with: the last plain
/// identifier, skipping numeric tuple projections and index brackets.
pub fn receiver_field(toks: &[Tok], end: usize) -> Option<&str> {
    let mut j = end;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &toks[j].kind {
            // `.0` / `.1` tuple projection: skip it and its dot.
            TokKind::Num => {
                if j >= 1 && toks[j - 1].is_punct('.') {
                    j -= 1;
                    continue;
                }
                return None;
            }
            // `…[idx]` indexing: skip the balanced brackets.
            TokKind::Punct(']') => {
                let mut depth = 0usize;
                while j > 0 {
                    if toks[j].is_punct(']') {
                        depth += 1;
                    } else if toks[j].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
            }
            TokKind::Ident(name) => return Some(name),
            _ => return None,
        }
    }
}

/// The memory-ordering idents recognised in call arguments.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Classify the orderings named in a call's argument tokens, in
/// positional order. Both `Ordering::Relaxed` and a bare imported
/// `Relaxed` are recognised.
pub fn orderings_in(toks: &[Tok]) -> Vec<&str> {
    toks.iter()
        .filter_map(|t| t.ident())
        .filter(|w| ORDERINGS.contains(w))
        .collect()
}

/// Whether a mutating call with these argument tokens has an effective
/// `Relaxed` ordering. For `compare_exchange{,_weak}` only the success
/// ordering (the first of the two trailing orderings) counts — a
/// `Relaxed` *failure* ordering is idiomatic.
pub fn effective_relaxed(arg_toks: &[Tok], is_cas: bool) -> bool {
    let ords = orderings_in(arg_toks);
    if is_cas {
        ords.first() == Some(&"Relaxed")
    } else {
        ords.contains(&"Relaxed")
    }
}

/// Collect every `fn` item (free functions, methods, nested fns) with
/// its body span. Bodyless trait-method declarations are skipped.
fn collect_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                // Scan for the body `{` at zero paren/bracket depth; a
                // `;` first means a declaration without a body.
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut j = i + 2;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('(') => paren += 1,
                        TokKind::Punct(')') => paren -= 1,
                        TokKind::Punct('[') => bracket += 1,
                        TokKind::Punct(']') => bracket -= 1,
                        TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                            out.push(FnItem {
                                name: name.clone(),
                                body: (j, matching(toks, j)),
                            });
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    out
}

/// Find every `#[cfg(test)]` / `#[test]` attribute and record the brace
/// extent of the item it gates (module or function).
fn collect_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && ((toks[i + 2].is_ident("cfg")
                && toks[i + 3].is_punct('(')
                && toks[i + 4].is_ident("test"))
                || (toks[i + 2].is_ident("test") && toks[i + 3].is_punct(']')));
        if is_cfg_test {
            // Skip to the gated item's opening brace (ignoring braces
            // inside any further attribute lists).
            let mut j = matching_attr_end(toks, i + 1) + 1;
            // Further attributes on the same item.
            while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                j = matching_attr_end(toks, j + 1) + 1;
            }
            let mut paren = 0i32;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') => paren += 1,
                    TokKind::Punct(')') => paren -= 1,
                    TokKind::Punct('{') if paren == 0 => {
                        out.push((j, matching(toks, j)));
                        break;
                    }
                    TokKind::Punct(';') if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// End index of the `[...]` attribute list opening at `open_bracket`.
fn matching_attr_end(toks: &[Tok], open_bracket: usize) -> usize {
    matching(toks, open_bracket)
}

/// Parse allow comments: `lint: allow(L001, L004) justification` plus
/// the legacy `lint: relaxed-ok` (≡ `allow(L001)`).
fn collect_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let text = c.text.as_str();
        if let Some(p) = text.find("lint: allow(") {
            let rest = &text[p + "lint: allow(".len()..];
            if let Some(close) = rest.find(')') {
                let rules: Vec<String> = rest[..close]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let justification = rest[close + 1..].trim().to_string();
                if !rules.is_empty() {
                    out.push(Allow {
                        line: c.end_line,
                        rules,
                        justification,
                    });
                }
            }
        } else if text.contains("lint: relaxed-ok") {
            out.push(Allow {
                line: c.end_line,
                rules: vec!["L001".to_string()],
                justification: text
                    .split("lint: relaxed-ok")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("t.rs"), src)
    }

    #[test]
    fn fns_and_bodies() {
        let f = parse("impl X { fn a(&self) -> u32 { 1 } }\nfn b<T: Into<u8>>(x: [u8; 4]) { {} }");
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for item in &f.fns {
            assert!(f.toks()[item.body.0].is_punct('{'));
            assert!(f.toks()[item.body.1].is_punct('}'));
        }
    }

    #[test]
    fn trait_decl_without_body_is_skipped() {
        let f = parse("trait T { fn no_body(&self) -> u8; fn with_body(&self) {} }");
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }

    #[test]
    fn cfg_test_regions() {
        let f = parse("fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}");
        assert_eq!(f.test_regions.len(), 1);
        let t = f.fns.iter().find(|x| x.name == "t").unwrap();
        assert!(f.in_test_region(t.body.0));
        let p = f.fns.iter().find(|x| x.name == "prod").unwrap();
        assert!(!f.in_test_region(p.body.0));
    }

    #[test]
    fn test_attr_gates_a_fn() {
        let f = parse("#[test]\nfn check() { x.iter(); }");
        assert_eq!(f.test_regions.len(), 1);
    }

    #[test]
    fn receiver_fields() {
        let f = parse("self.now_serving.0.store(1, o); shards[vci].last_poll_ns.load(o);");
        let toks = f.toks();
        // Find the `store` and `load` idents, extract their receivers.
        let store = toks.iter().position(|t| t.is_ident("store")).unwrap();
        assert_eq!(receiver_field(toks, store - 1), Some("now_serving"));
        let load = toks.iter().position(|t| t.is_ident("load")).unwrap();
        assert_eq!(receiver_field(toks, load - 1), Some("last_poll_ns"));
    }

    #[test]
    fn allow_comments() {
        let f = parse(
            "// lint: allow(L002, L004) deliberate relaxed peek\nx.load(Relaxed);\n// lint: relaxed-ok legacy\ny.store(1, Relaxed);",
        );
        assert!(f.allowed("L002", 2));
        assert!(f.allowed("L004", 2));
        assert!(!f.allowed("L001", 2));
        assert!(f.allowed("L001", 4));
    }

    #[test]
    fn cas_success_ordering() {
        let f = parse("c.compare_exchange(a, b, Ordering::Acquire, Ordering::Relaxed)");
        let toks = f.toks();
        let open = toks.iter().position(|t| t.is_punct('(')).unwrap();
        let close = matching(toks, open);
        assert!(!effective_relaxed(&toks[open..=close], true));
        assert!(effective_relaxed(&toks[open..=close], false));
    }
}
