//! L004 negative fixture — nondeterminism sources in deterministic code.
//!
//! Not compiled: parsed by `tests/rules.rs` with a `crates/sim/src/`
//! path so the rule is in scope. Lines marked `FIRE: L004` must be
//! flagged; `#[cfg(test)]` regions and `ALLOWED` sites are exempt.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub struct Book {
    by_rank: HashMap<u32, u64>,
    members: HashSet<u32>,
    ordered: BTreeMap<u32, u64>,
}

pub fn stamp_wrong() -> Instant {
    Instant::now() // FIRE: L004
}

pub fn wall_wrong() -> u64 {
    let _t = SystemTime::now(); // FIRE: L004
    0
}

pub fn entropy_wrong() -> u64 {
    let mut rng = thread_rng(); // FIRE: L004
    rng.next()
}

pub fn ambient_wrong() -> u64 {
    rand::random() // FIRE: L004
}

pub fn hash_iter_wrong(b: &Book) -> u64 {
    b.by_rank.values().sum() // FIRE: L004
}

pub fn hash_for_wrong(b: &Book) -> u64 {
    let mut total = 0;
    for r in &b.members { // FIRE: L004
        total += u64::from(*r);
    }
    total
}

pub fn local_hash_wrong() -> usize {
    let seen = HashSet::new();
    seen.iter().count() // FIRE: L004
}

pub fn btree_iter_ok(b: &Book) -> u64 {
    // Ordered container — must not fire.
    b.ordered.values().sum()
}

pub fn membership_ok(b: &Book) -> bool {
    // Membership ops are deterministic — must not fire.
    b.members.contains(&3) && b.by_rank.get(&3).is_some()
}

pub fn allowed_site() -> Instant {
    // lint: allow(L004) fixture: the pretend native backend measures wall time
    Instant::now() // ALLOWED: L004
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_are_exempt() {
        let _ = Instant::now();
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = m.iter().count();
    }
}
