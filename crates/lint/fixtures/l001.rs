//! L001 negative fixture — Relaxed mutations of hand-off fields.
//!
//! Not compiled: parsed by `tests/rules.rs`, which expects exactly the
//! lines marked `FIRE: L001` to be flagged (and the `allow` site to be
//! suppressed). Lives outside the engine's scan roots.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

pub struct Handoff {
    locked: AtomicBool,
    now_serving: AtomicU32,
    claim: AtomicU8,
    ready: AtomicBool,
    stream_owner: AtomicU64,
    published: AtomicU64,
    tenant_state: AtomicU8,
    count: AtomicU64,
}

impl Handoff {
    pub fn unlock_wrong(&self) {
        self.locked.store(false, Ordering::Relaxed); // FIRE: L001
    }

    pub fn serve_next_wrong(&self) {
        self.now_serving.fetch_add(1, Ordering::Relaxed); // FIRE: L001
    }

    pub fn claim_wrong(&self) -> bool {
        // Relaxed *success* ordering on the claim CAS: no Release edge.
        self.claim.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok() // FIRE: L001
    }

    pub fn claim_right(&self) -> bool {
        // Relaxed *failure* ordering is idiomatic — must not fire.
        self.claim.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok()
    }

    pub fn publish_right(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn stream_unbind_wrong(&self) {
        // Relaxed release of the stream claim word: the next binder's
        // Acquire CAS has nothing to pair with.
        self.stream_owner.store(0, Ordering::Relaxed); // FIRE: L001
    }

    pub fn stream_bind_wrong(&self, me: u64) -> bool {
        self.stream_owner.compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed).is_ok() // FIRE: L001
    }

    pub fn stream_bind_right(&self, me: u64) -> bool {
        // The real bind: AcqRel success pairs with the unbind Release.
        self.stream_owner.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    pub fn stream_unbind_right(&self) {
        self.stream_owner.store(0, Ordering::Release);
    }

    pub fn publish_watermark_wrong(&self, n: u64) {
        // Relaxed advance of the recorder watermark: the reader's
        // Acquire load would see the count without the event slots.
        self.published.store(n, Ordering::Relaxed); // FIRE: L001
    }

    pub fn publish_watermark_right(&self, n: u64) {
        self.published.store(n, Ordering::Release);
    }

    pub fn tenant_enqueue_wrong(&self) -> bool {
        // Relaxed success on the Idle→Pending CAS: the worker that later
        // takes the tenant has no edge to the enqueuer's parked state.
        self.tenant_state.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok() // FIRE: L001
    }

    pub fn tenant_park_wrong(&self) {
        // Relaxed park back to Idle: the next enqueuer's Acquire CAS has
        // nothing to pair with, so the parked work item is unpublished.
        self.tenant_state.store(0, Ordering::Relaxed); // FIRE: L001
    }

    pub fn tenant_enqueue_right(&self) -> bool {
        self.tenant_state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    pub fn tenant_park_right(&self) {
        self.tenant_state.store(0, Ordering::Release);
    }

    pub fn stat_ok(&self) {
        // `count` is not a hand-off field — must not fire.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn allowed_site(&self) {
        // lint: allow(L001) fixture: proves per-site suppression works
        self.locked.store(false, Ordering::Relaxed); // ALLOWED: L001
    }

    pub fn legacy_allowed_site(&self) {
        // deliberate, lint: relaxed-ok (legacy spelling == allow(L001))
        self.locked.store(false, Ordering::Relaxed); // ALLOWED: L001
    }
}
