//! L002 negative fixture — Acquire-less loads of published state.
//!
//! Not compiled: parsed by `tests/rules.rs`; lines marked `FIRE: L002`
//! must be flagged, `ALLOWED` sites suppressed.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

pub struct Published {
    ready: AtomicBool,
    seq: AtomicU64,
    ack: AtomicU64,
    mail_ready: AtomicBool,
    stream_owner: AtomicU64,
    published: AtomicU64,
    tenant_state: AtomicU8,
    scratch: AtomicU32,
}

impl Published {
    pub fn consume_wrong(&self) -> bool {
        self.ready.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn seq_wrong(&self) -> u64 {
        self.seq.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn mailbox_wrong(&self) -> bool {
        self.mail_ready.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn ack_right(&self) -> u64 {
        self.ack.load(Ordering::Acquire)
    }

    pub fn stream_owner_wrong(&self) -> u64 {
        // Checking "is the stream free?" without the Acquire misses the
        // previous owner's plain-state publication.
        self.stream_owner.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn stream_owner_right(&self) -> u64 {
        self.stream_owner.load(Ordering::Acquire)
    }

    pub fn watermark_wrong(&self) -> u64 {
        // Draining up to the watermark without the Acquire can read
        // uninitialised slots the writer published after.
        self.published.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn watermark_right(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    pub fn tenant_state_wrong(&self) -> u8 {
        // Observing Pending/Running without the Acquire misses the
        // parker's Release of the tenant's work item.
        self.tenant_state.load(Ordering::Relaxed) // FIRE: L002
    }

    pub fn tenant_state_right(&self) -> u8 {
        self.tenant_state.load(Ordering::Acquire)
    }

    pub fn watermark_self_read_allowed(&self) -> u64 {
        // lint: allow(L002) single-writer shard reads back its own watermark
        self.published.load(Ordering::Relaxed) // ALLOWED: L002
    }

    pub fn scratch_ok(&self) -> u32 {
        // `scratch` is not published state — must not fire.
        self.scratch.load(Ordering::Relaxed)
    }

    pub fn peek_allowed(&self) -> bool {
        // lint: allow(L002) TTAS-style peek; the fixture's pretend CAS has the Acquire
        self.ready.load(Ordering::Relaxed) // ALLOWED: L002
    }
}
