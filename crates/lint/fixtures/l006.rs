//! L006 negative fixture — `unsafe` without a `// SAFETY:` comment.
//!
//! Not compiled: parsed by `tests/rules.rs`. Lines marked `FIRE: L006`
//! must be flagged; documented sites, `unsafe fn` declarations, and
//! `ALLOWED` sites are exempt.

pub struct Raw(*mut u8);

pub fn documented_block(p: &Raw) -> u8 {
    // SAFETY: fixture — the pointer is valid by construction.
    unsafe { p.0.read() }
}

pub fn documented_wrapped(p: &Raw) -> u8 {
    // SAFETY: fixture — comment two lines above a wrapped statement
    // still counts (the run ends on the preceding line).
    let v = unsafe { p.0.read() };
    v
}

pub fn undocumented_block(p: &Raw) -> u8 {
    unsafe { p.0.read() } // FIRE: L006
}

pub fn wrong_comment_block(p: &Raw) -> u8 {
    // this comment says nothing about safety
    unsafe { p.0.read() } // FIRE: L006
}

unsafe impl Send for Raw {} // FIRE: L006

// SAFETY: fixture — external synchronization guards all accesses.
unsafe impl Sync for Raw {}

/// `unsafe fn` declares a contract; the discharge sites carry the
/// proof — must not fire.
pub unsafe fn contract_only(p: &Raw) -> u8 {
    // SAFETY: forwarding the caller's contract.
    unsafe { p.0.read() }
}

pub fn allowed_site(p: &Raw) -> u8 {
    // lint: allow(L006) fixture: proves suppression for unsafe sites
    unsafe { p.0.read() } // ALLOWED: L006
}
