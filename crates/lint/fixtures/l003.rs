//! L003 negative fixture — nested critical-section entry.
//!
//! Not compiled: parsed by `tests/rules.rs` with a `crates/runtime/src/`
//! path so the rule is in scope. Lines marked `FIRE: L003` must be
//! flagged; the fixpoint must mark `helper_enters` as cs-entering and
//! leave `innocent_helper` clean.

pub struct World;

impl World {
    pub fn cs<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
    pub fn cs_on<R>(&self, _shard: usize, f: impl FnOnce() -> R) -> R {
        f()
    }
}

// Enters the CS itself → the fixpoint marks it, and free calls to it
// from inside a CS closure are second entries.
fn helper_enters(w: &World) {
    w.cs(|| 0);
}

// Never touches a CS — calls to it anywhere are fine.
fn innocent_helper() -> u32 {
    7
}

pub fn nested_direct(w: &World) {
    w.cs(|| {
        w.cs_on(0, || 1); // FIRE: L003
    });
}

pub fn nested_interprocedural(w: &World) {
    w.cs_on(1, || {
        helper_enters(w); // FIRE: L003
        innocent_helper();
    });
}

pub fn sequential_ok(w: &World) {
    // Back-to-back sections (release between) — must not fire.
    w.cs(|| 2);
    w.cs(|| 3);
    helper_enters(w);
}

pub fn allowed_site(w: &World) {
    w.cs(|| {
        // lint: allow(L003) fixture: ordered two-tier hold, checked by lockdep
        helper_enters(w); // ALLOWED: L003
    });
}
