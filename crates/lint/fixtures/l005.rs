//! L005 negative fixture — panics on typed-error (`try_*`) paths.
//!
//! Not compiled: parsed by `tests/rules.rs` with a `crates/runtime/src/`
//! path so the rule is in scope. Lines marked `FIRE: L005` must be
//! flagged; std conversions (`try_into`), test regions, and `ALLOWED`
//! sites are exempt.

pub struct MpiError;

pub struct Handle;

impl Handle {
    pub fn try_thing(&self) -> Result<u32, MpiError> {
        let v = self.raw().unwrap(); // FIRE: L005
        if v == 0 {
            panic!("zero is not a thing"); // FIRE: L005
        }
        Ok(v)
    }

    pub fn try_clean(&self) -> Result<u32, MpiError> {
        self.raw().ok_or(MpiError)
    }

    fn raw(&self) -> Option<u32> {
        Some(1)
    }

    pub fn call_site_wrong(&self) -> u32 {
        self.try_thing().unwrap() // FIRE: L005
    }

    pub fn call_site_expect_wrong(&self) -> u32 {
        self.try_clean().expect("thing exists") // FIRE: L005
    }

    pub fn call_site_right(&self) -> Result<u32, MpiError> {
        self.try_thing()
    }

    pub fn conversion_ok(&self, b: &[u8]) -> u64 {
        // std `try_into` has no MpiError equivalent — must not fire.
        u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }

    pub fn allowed_site(&self) -> u32 {
        // lint: allow(L005) fixture: invariant — raw() is always Some here
        self.try_thing().unwrap() // ALLOWED: L005
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let h = Handle;
        let _ = h.try_thing().unwrap();
    }
}
