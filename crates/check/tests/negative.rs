//! Negative tests: prove the checkers actually fire.
//!
//! Each test *seeds* a defect — a lock-order cycle, a leaked request —
//! and asserts the corresponding checker reports it. A checker that only
//! ever sees clean runs is untested; these are the runs that must fail.

use mtmpi_check::{LockOrderGraph, Ordered, RequestLedger};
use mtmpi_locks::{CsLock, PathClass, TicketLock};
use mtmpi_net::NetModel;
use mtmpi_runtime::{MsgData, World};
use mtmpi_sim::{LockKind, LockModelParams, Platform, ThreadDesc, VirtualPlatform};
use mtmpi_topology::presets::nehalem_cluster_scaled;
use mtmpi_topology::CoreId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn platform(nodes: u32, seed: u64) -> Arc<dyn Platform> {
    Arc::new(VirtualPlatform::new(
        nehalem_cluster_scaled(nodes),
        NetModel::qdr(),
        LockModelParams::default(),
        seed,
    ))
}

fn spawn(p: &Arc<dyn Platform>, name: &str, node: u32, f: impl FnOnce() + Send + 'static) {
    p.spawn(
        ThreadDesc {
            name: name.into(),
            node,
            core: CoreId(0),
        },
        Box::new(f),
    );
}

/// Seed a classic ABBA inversion across two real threads and assert the
/// lock-order graph reports exactly the queue↔progress cycle.
#[test]
fn seeded_lock_order_cycle_is_detected() {
    let graph = Arc::new(LockOrderGraph::new());
    let a = Arc::new(Ordered::new(TicketLock::new(), "queue", &graph));
    let b = Arc::new(Ordered::new(TicketLock::new(), "progress", &graph));
    // Rendezvous so the two opposite-order acquisitions really interleave
    // is unnecessary — the graph accumulates order evidence across time,
    // so we serialize the threads and still catch the inversion.
    let (a1, b1) = (a.clone(), b.clone());
    let t1 = std::thread::spawn(move || {
        let ta = a1.acquire(PathClass::Main);
        let tb = b1.acquire(PathClass::Progress);
        b1.release(PathClass::Progress, tb);
        a1.release(PathClass::Main, ta);
    });
    t1.join().unwrap();
    let (a2, b2) = (a.clone(), b.clone());
    let t2 = std::thread::spawn(move || {
        let tb = b2.acquire(PathClass::Progress);
        let ta = a2.acquire(PathClass::Main);
        a2.release(PathClass::Main, ta);
        b2.release(PathClass::Progress, tb);
    });
    t2.join().unwrap();
    let cycles = graph.potential_deadlocks();
    assert_eq!(
        cycles.len(),
        1,
        "expected the seeded ABBA cycle: {cycles:?}"
    );
    assert!(cycles[0].contains(&"queue".to_string()));
    assert!(cycles[0].contains(&"progress".to_string()));
}

/// Seed a leaked posted receive (irecv dropped without wait) and assert
/// the World-drop leak check panics with the ledger report.
#[test]
fn seeded_leaked_request_is_detected_at_world_drop() {
    let p = platform(1, 7);
    let w = World::builder(p.clone())
        .ranks(1)
        .build()
        .expect("valid world");
    let r0 = w.rank(0).world_comm();
    spawn(&p, "leaker", 0, move || {
        // Post a receive that no sender will ever match, then drop the
        // handle without wait/test: Issue → Post, never Complete/Free.
        let req = r0.irecv(None, Some(99));
        drop(req);
    });
    p.run();
    let ledger = w.stats(0).ledger;
    assert_eq!(ledger.issued(), 1);
    assert_eq!(ledger.posted(), 1);
    assert!(
        ledger.check_quiescent().is_err(),
        "leak must be visible in the ledger"
    );
    let panic = catch_unwind(AssertUnwindSafe(move || drop(w)))
        .expect_err("World drop must panic on the leaked request");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        panic
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .unwrap_or_default()
    });
    assert!(
        msg.contains("leaked requests") && msg.contains("never completed"),
        "unexpected panic message: {msg}"
    );
}

/// Seed a completed-but-unfreed request (isend dropped without wait):
/// the eager send completes at issue time, so this leak is a dangling
/// (completed, never freed) request.
#[test]
fn seeded_unfreed_send_is_detected_at_world_drop() {
    let p = platform(2, 8);
    let w = World::builder(p.clone())
        .ranks(2)
        .rank_on_node(|r| r)
        .build()
        .expect("valid world");
    let (a, b) = (w.rank(0).world_comm(), w.rank(1).world_comm());
    spawn(&p, "s", 0, move || {
        let req = a.isend(1, 4, MsgData::Bytes(vec![9]));
        drop(req); // leak: never waited
    });
    spawn(&p, "r", 1, move || {
        let m = b.recv(Some(0), Some(4));
        assert_eq!(m.data.as_bytes(), &[9]);
    });
    p.run();
    let err = w.stats(0).ledger.check_quiescent().unwrap_err();
    assert_eq!(
        err.unfreed(),
        1,
        "the send completed eagerly but was never freed"
    );
    assert_eq!(err.uncompleted(), 0);
    catch_unwind(AssertUnwindSafe(move || drop(w)))
        .expect_err("World drop must panic on the unfreed send");
}

/// The complement: a clean exchange leaves every rank's ledger quiescent
/// and the World drops without complaint.
#[test]
fn clean_exchange_is_quiescent() {
    let p = platform(2, 9);
    let w = World::builder(p.clone())
        .ranks(2)
        .rank_on_node(|r| r)
        .lock(LockKind::Ticket)
        .build()
        .expect("valid world");
    let (a, b) = (w.rank(0).world_comm(), w.rank(1).world_comm());
    spawn(&p, "s", 0, move || {
        let r = a.isend(1, 1, MsgData::Bytes(vec![1, 2]));
        let _ = a.wait(r);
    });
    spawn(&p, "r", 1, move || {
        let r = b.irecv(Some(0), Some(1));
        let m = b.wait(r);
        assert_eq!(m.data.as_bytes(), &[1, 2]);
    });
    p.run();
    for rank in 0..2 {
        let l = w.stats(rank).ledger;
        assert_eq!(l.check_quiescent(), Ok(()), "rank {rank}: {l:?}");
        assert_eq!(l.in_flight(), 0);
    }
    drop(w); // must not panic
}

/// Ledger-level seeded leak, no runtime involved: the checker fires on
/// the raw counters too.
#[test]
fn ledger_only_seeded_leak() {
    let mut l = RequestLedger::new();
    l.note_issued();
    l.note_posted();
    l.note_completed();
    // never freed
    let err = l.check_quiescent().unwrap_err();
    assert_eq!(err.unfreed(), 1);
    assert_eq!(l.dangling(), 1);
}
