//! Dangling-request leak checker.
//!
//! The paper's request life cycle (Fig 3b) is Issue → (Post) → Complete →
//! Free: every request that a thread issues must eventually be completed
//! by the progress engine and freed by a wait/test. A request that is
//! still unfreed when the `World` is torn down is a leak — either an
//! application bug (a `Request` handle was dropped without `wait`/`test`)
//! or a runtime bug (a completion was lost).
//!
//! [`RequestLedger`] is a set of plain counters bumped at each life-cycle
//! transition. The runtime keeps one per process inside the
//! critical-section-guarded `SharedState`, so no extra synchronization is
//! needed, and checks [`RequestLedger::check_quiescent`] when the `World`
//! is dropped (debug builds only).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Life-cycle counters for the requests of one MPI process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLedger {
    issued: u64,
    posted: u64,
    completed: u64,
    freed: u64,
    cancelled: u64,
}

impl RequestLedger {
    /// Fresh ledger, all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was issued (`isend`/`irecv`).
    pub fn note_issued(&mut self) {
        self.issued += 1;
    }

    /// A receive found no unexpected match and was posted.
    pub fn note_posted(&mut self) {
        self.posted += 1;
    }

    /// A request was completed (eagerly at issue, or by the progress
    /// engine matching a posted receive).
    pub fn note_completed(&mut self) {
        self.completed += 1;
    }

    /// A completed request was freed by `wait`/`test`/`waitall`.
    pub fn note_freed(&mut self) {
        self.freed += 1;
    }

    /// A still-active request was cancelled (e.g. a posted receive
    /// withdrawn on a wait timeout). The request leaves the life cycle
    /// without completing, so cancellations balance against `issued`
    /// separately from `freed`.
    pub fn note_cancelled(&mut self) {
        self.cancelled += 1;
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Receives posted (issued minus eager matches).
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests freed so far.
    pub fn freed(&self) -> u64 {
        self.freed
    }

    /// Requests cancelled before completion (timeout path).
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Requests issued but not yet freed or cancelled (live handles).
    pub fn in_flight(&self) -> u64 {
        self.issued.saturating_sub(self.freed + self.cancelled)
    }

    /// Requests completed but not yet freed — the instantaneous §4.4
    /// *dangling requests* count, from the ledger's point of view.
    pub fn dangling(&self) -> u64 {
        self.completed.saturating_sub(self.freed)
    }

    /// Fold another ledger into this one (e.g. to aggregate ranks).
    pub fn merge(&mut self, other: &Self) {
        self.issued += other.issued;
        self.posted += other.posted;
        self.completed += other.completed;
        self.freed += other.freed;
        self.cancelled += other.cancelled;
    }

    /// Check the ledger at quiescence (no operation in progress): every
    /// issued request must have been completed and freed — or explicitly
    /// cancelled — and the counters must be mutually consistent. Returns
    /// a [`LeakReport`] describing what leaked otherwise.
    pub fn check_quiescent(&self) -> Result<(), LeakReport> {
        let consistent = self.posted <= self.issued
            && self.completed <= self.issued
            && self.freed <= self.completed
            && self.cancelled <= self.issued;
        // Every completed request must be freed, and every issued request
        // must end freed or cancelled — a cancel cannot stand in for the
        // free of a completed request.
        if consistent && self.freed == self.completed && self.freed + self.cancelled == self.issued
        {
            Ok(())
        } else {
            Err(LeakReport { ledger: *self })
        }
    }
}

/// Lock-free [`RequestLedger`]: the same life-cycle counters, but with
/// `&self` mutators so several threads can account concurrently without
/// sharing a critical section.
///
/// The sharded runtime needs this for *multi-shard* wildcard receives:
/// such a request is posted to every VCI, and the shard that completes
/// it does so under *its own* lock — there is no single lock that could
/// guard a plain ledger for them. Counters use `Relaxed` ordering: they
/// are statistics folded into a [`RequestLedger`] snapshot at quiescence
/// (after `Platform::run` joins every thread), never a synchronization
/// hand-off.
#[derive(Debug, Default)]
pub struct SharedLedger {
    issued: AtomicU64,
    posted: AtomicU64,
    completed: AtomicU64,
    freed: AtomicU64,
    cancelled: AtomicU64,
}

impl SharedLedger {
    /// Fresh ledger, all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was issued (`isend`/`irecv`).
    pub fn note_issued(&self) {
        self.issued.fetch_add(1, Ordering::Relaxed);
    }

    /// A receive was posted (counted once per request, not per shard).
    pub fn note_posted(&self) {
        self.posted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was completed by whichever shard won the claim.
    pub fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A completed request was freed by its owner.
    pub fn note_freed(&self) {
        self.freed.fetch_add(1, Ordering::Relaxed);
    }

    /// A still-unclaimed request was cancelled by its owner.
    pub fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters into a plain [`RequestLedger`] for merging
    /// and quiescence checks.
    pub fn snapshot(&self) -> RequestLedger {
        RequestLedger {
            issued: self.issued.load(Ordering::Relaxed),
            posted: self.posted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }
}

/// Failure description from [`RequestLedger::check_quiescent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakReport {
    /// The offending counters.
    pub ledger: RequestLedger,
}

impl LeakReport {
    /// Requests never completed nor cancelled (issued − completed −
    /// cancelled): lost messages or receives whose sender never existed.
    pub fn uncompleted(&self) -> u64 {
        self.ledger
            .issued
            .saturating_sub(self.ledger.completed + self.ledger.cancelled)
    }

    /// Requests completed but never freed (dropped `Request` handles).
    pub fn unfreed(&self) -> u64 {
        self.ledger.dangling()
    }
}

impl fmt::Display for LeakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = &self.ledger;
        write!(
            f,
            "request ledger not quiescent: issued={} posted={} completed={} freed={} \
             cancelled={} ({} never completed, {} completed but never freed)",
            l.issued,
            l.posted,
            l.completed,
            l.freed,
            l.cancelled,
            self.uncompleted(),
            self.unfreed()
        )
    }
}

impl std::error::Error for LeakReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ledger_is_quiescent() {
        let mut l = RequestLedger::new();
        // One eager send: issue + complete at issue time, freed by wait.
        l.note_issued();
        l.note_completed();
        l.note_freed();
        // One posted receive: issue + post, completed by progress, freed.
        l.note_issued();
        l.note_posted();
        l.note_completed();
        l.note_freed();
        assert_eq!(l.check_quiescent(), Ok(()));
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.dangling(), 0);
    }

    #[test]
    fn leaked_posted_receive_is_reported() {
        let mut l = RequestLedger::new();
        l.note_issued();
        l.note_posted();
        let err = l.check_quiescent().unwrap_err();
        assert_eq!(err.uncompleted(), 1);
        assert_eq!(err.unfreed(), 0);
        assert!(err.to_string().contains("1 never completed"), "{err}");
    }

    #[test]
    fn completed_but_unfreed_is_reported() {
        let mut l = RequestLedger::new();
        l.note_issued();
        l.note_completed();
        let err = l.check_quiescent().unwrap_err();
        assert_eq!(err.uncompleted(), 0);
        assert_eq!(err.unfreed(), 1);
    }

    #[test]
    fn cancelled_receive_balances_the_ledger() {
        let mut l = RequestLedger::new();
        // A posted receive whose sender never shows up, withdrawn by a
        // wait timeout: issue + post + cancel, no complete, no free.
        l.note_issued();
        l.note_posted();
        l.note_cancelled();
        assert_eq!(l.check_quiescent(), Ok(()));
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.cancelled(), 1);
        // A cancel cannot stand in for a free of a *completed* request.
        let mut m = RequestLedger::new();
        m.note_issued();
        m.note_completed();
        m.note_cancelled();
        let err = m.check_quiescent().unwrap_err();
        assert_eq!(err.unfreed(), 1);
    }

    #[test]
    fn inconsistent_counters_are_reported() {
        let mut l = RequestLedger::new();
        // Freed without issue/completion: a runtime accounting bug.
        l.note_freed();
        assert!(l.check_quiescent().is_err());
    }

    #[test]
    fn shared_ledger_accounts_concurrently_and_snapshots_quiescent() {
        use std::sync::Arc;
        let l = Arc::new(SharedLedger::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        // A multi-shard wildcard receive's life cycle:
                        // issued and posted by the owner, completed by
                        // whichever shard wins the claim, freed by the
                        // owner.
                        l.note_issued();
                        l.note_posted();
                        l.note_completed();
                        l.note_freed();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = l.snapshot();
        assert_eq!(snap.issued(), 400);
        assert_eq!(snap.posted(), 400);
        assert_eq!(snap.check_quiescent(), Ok(()));
        // Snapshots merge like any plain ledger.
        let mut sum = RequestLedger::new();
        sum.merge(&snap);
        sum.merge(&snap);
        assert_eq!(sum.issued(), 800);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = RequestLedger::new();
        a.note_issued();
        a.note_completed();
        a.note_freed();
        let mut b = RequestLedger::new();
        b.note_issued();
        let mut sum = RequestLedger::new();
        sum.merge(&a);
        sum.merge(&b);
        assert_eq!(sum.issued(), 2);
        assert_eq!(sum.freed(), 1);
        assert!(sum.check_quiescent().is_err());
    }
}
