//! Dangling-request leak checker.
//!
//! The paper's request life cycle (Fig 3b) is Issue → (Post) → Complete →
//! Free: every request that a thread issues must eventually be completed
//! by the progress engine and freed by a wait/test. A request that is
//! still unfreed when the `World` is torn down is a leak — either an
//! application bug (a `Request` handle was dropped without `wait`/`test`)
//! or a runtime bug (a completion was lost).
//!
//! [`RequestLedger`] is a set of plain counters bumped at each life-cycle
//! transition. The runtime keeps one per process inside the
//! critical-section-guarded `SharedState`, so no extra synchronization is
//! needed, and checks [`RequestLedger::check_quiescent`] when the `World`
//! is dropped (debug builds only).

use std::fmt;

/// Life-cycle counters for the requests of one MPI process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLedger {
    issued: u64,
    posted: u64,
    completed: u64,
    freed: u64,
}

impl RequestLedger {
    /// Fresh ledger, all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was issued (`isend`/`irecv`).
    pub fn note_issued(&mut self) {
        self.issued += 1;
    }

    /// A receive found no unexpected match and was posted.
    pub fn note_posted(&mut self) {
        self.posted += 1;
    }

    /// A request was completed (eagerly at issue, or by the progress
    /// engine matching a posted receive).
    pub fn note_completed(&mut self) {
        self.completed += 1;
    }

    /// A completed request was freed by `wait`/`test`/`waitall`.
    pub fn note_freed(&mut self) {
        self.freed += 1;
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Receives posted (issued minus eager matches).
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests freed so far.
    pub fn freed(&self) -> u64 {
        self.freed
    }

    /// Requests issued but not yet freed (live handles).
    pub fn in_flight(&self) -> u64 {
        self.issued.saturating_sub(self.freed)
    }

    /// Requests completed but not yet freed — the instantaneous §4.4
    /// *dangling requests* count, from the ledger's point of view.
    pub fn dangling(&self) -> u64 {
        self.completed.saturating_sub(self.freed)
    }

    /// Fold another ledger into this one (e.g. to aggregate ranks).
    pub fn merge(&mut self, other: &Self) {
        self.issued += other.issued;
        self.posted += other.posted;
        self.completed += other.completed;
        self.freed += other.freed;
    }

    /// Check the ledger at quiescence (no operation in progress): every
    /// issued request must have been completed and freed, and the
    /// counters must be mutually consistent. Returns a [`LeakReport`]
    /// describing what leaked otherwise.
    pub fn check_quiescent(&self) -> Result<(), LeakReport> {
        let consistent = self.posted <= self.issued
            && self.completed <= self.issued
            && self.freed <= self.completed;
        if consistent && self.freed == self.issued {
            Ok(())
        } else {
            Err(LeakReport { ledger: *self })
        }
    }
}

/// Failure description from [`RequestLedger::check_quiescent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakReport {
    /// The offending counters.
    pub ledger: RequestLedger,
}

impl LeakReport {
    /// Requests never completed (issued − completed): lost messages or
    /// receives whose sender never existed.
    pub fn uncompleted(&self) -> u64 {
        self.ledger.issued.saturating_sub(self.ledger.completed)
    }

    /// Requests completed but never freed (dropped `Request` handles).
    pub fn unfreed(&self) -> u64 {
        self.ledger.dangling()
    }
}

impl fmt::Display for LeakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = &self.ledger;
        write!(
            f,
            "request ledger not quiescent: issued={} posted={} completed={} freed={} \
             ({} never completed, {} completed but never freed)",
            l.issued,
            l.posted,
            l.completed,
            l.freed,
            self.uncompleted(),
            self.unfreed()
        )
    }
}

impl std::error::Error for LeakReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ledger_is_quiescent() {
        let mut l = RequestLedger::new();
        // One eager send: issue + complete at issue time, freed by wait.
        l.note_issued();
        l.note_completed();
        l.note_freed();
        // One posted receive: issue + post, completed by progress, freed.
        l.note_issued();
        l.note_posted();
        l.note_completed();
        l.note_freed();
        assert_eq!(l.check_quiescent(), Ok(()));
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.dangling(), 0);
    }

    #[test]
    fn leaked_posted_receive_is_reported() {
        let mut l = RequestLedger::new();
        l.note_issued();
        l.note_posted();
        let err = l.check_quiescent().unwrap_err();
        assert_eq!(err.uncompleted(), 1);
        assert_eq!(err.unfreed(), 0);
        assert!(err.to_string().contains("1 never completed"), "{err}");
    }

    #[test]
    fn completed_but_unfreed_is_reported() {
        let mut l = RequestLedger::new();
        l.note_issued();
        l.note_completed();
        let err = l.check_quiescent().unwrap_err();
        assert_eq!(err.uncompleted(), 0);
        assert_eq!(err.unfreed(), 1);
    }

    #[test]
    fn inconsistent_counters_are_reported() {
        let mut l = RequestLedger::new();
        // Freed without issue/completion: a runtime accounting bug.
        l.note_freed();
        assert!(l.check_quiescent().is_err());
    }

    #[test]
    fn merge_aggregates() {
        let mut a = RequestLedger::new();
        a.note_issued();
        a.note_completed();
        a.note_freed();
        let mut b = RequestLedger::new();
        b.note_issued();
        let mut sum = RequestLedger::new();
        sum.merge(&a);
        sum.merge(&b);
        assert_eq!(sum.issued(), 2);
        assert_eq!(sum.freed(), 1);
        assert!(sum.check_quiescent().is_err());
    }
}
