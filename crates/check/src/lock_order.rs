//! Lock-order graph with cycle (potential-deadlock) detection.
//!
//! Classic lockdep-style analysis: every time a thread acquires lock `B`
//! while already holding lock `A`, the ordered edge `A → B` is recorded in
//! a process-wide graph. A cycle in that graph means two code paths take
//! the same locks in opposite orders — a *potential* deadlock, reported
//! even if the unlucky interleaving never happened in this run.
//!
//! Locks participate by being wrapped in [`Ordered`], which implements
//! [`CsLock`] by delegating to the inner lock and reporting acquire /
//! release events to a shared [`LockOrderGraph`]. Recording is gated on
//! `debug_assertions`, so release builds pay nothing beyond the delegating
//! call; the graph API itself is unconditional so tests can drive it
//! directly.

use mtmpi_locks::{CsLock, CsToken, PathClass};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::thread::ThreadId;

/// Identifier of one registered lock inside a [`LockOrderGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderedLockId(usize);

#[derive(Debug, Default)]
struct GraphState {
    /// Human-readable name per registered lock, indexed by id.
    names: Vec<String>,
    /// `edges[a]` contains `b` iff some thread acquired `b` while
    /// holding `a`.
    edges: BTreeMap<usize, BTreeSet<usize>>,
    /// Per-thread stack of currently held lock ids.
    held: HashMap<ThreadId, Vec<usize>>,
}

/// Process-wide acquired-while-holding graph.
///
/// Shared (via `Arc`) by every [`Ordered`] wrapper that should be analysed
/// together. All methods take `&self`; the state sits behind a mutex that
/// is held only for short bookkeeping sections.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    state: Mutex<GraphState>,
}

/// One lock-order cycle: the lock names along the cycle, closed (the
/// first name is repeated at the end).
pub type Cycle = Vec<String>;

impl LockOrderGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a lock under `name` and get its id.
    pub fn register(&self, name: &str) -> OrderedLockId {
        let mut st = self.state.lock();
        st.names.push(name.to_string());
        OrderedLockId(st.names.len() - 1)
    }

    /// Record that the calling thread is acquiring `id`: adds an edge from
    /// every lock the thread currently holds to `id`, then marks `id`
    /// held. Called *before* the underlying acquire so the intent is on
    /// record even if the acquire itself deadlocks.
    pub fn note_acquire(&self, id: OrderedLockId) {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        let held = st.held.entry(me).or_default();
        let from: Vec<usize> = held.clone();
        held.push(id.0);
        for a in from {
            st.edges.entry(a).or_default().insert(id.0);
        }
    }

    /// Record that the calling thread released `id` (most recent matching
    /// hold; out-of-order releases are tolerated).
    pub fn note_release(&self, id: OrderedLockId) {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        if let Some(held) = st.held.get_mut(&me) {
            if let Some(pos) = held.iter().rposition(|&h| h == id.0) {
                held.remove(pos);
            }
        }
    }

    /// Number of distinct order edges recorded so far.
    pub fn edge_count(&self) -> usize {
        let st = self.state.lock();
        st.edges.values().map(BTreeSet::len).sum()
    }

    /// All lock-order cycles in the recorded graph (potential deadlocks).
    ///
    /// Each cycle is reported once as the list of lock names along it.
    /// An empty result means the observed acquisition orders admit a
    /// global total order — no deadlock is possible from lock ordering
    /// alone.
    pub fn potential_deadlocks(&self) -> Vec<Cycle> {
        let st = self.state.lock();
        let n = st.names.len();
        // Iterative DFS with the standard three colours; a back edge to a
        // grey node closes a cycle, which we read off the DFS stack.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let succ = |v: usize| -> Vec<usize> {
            st.edges
                .get(&v)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()
        };
        let mut colour = vec![Colour::White; n];
        let mut cycles = Vec::new();
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for root in 0..n {
            if colour[root] != Colour::White {
                continue;
            }
            // Stack of (node, successor list, next successor index).
            let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            colour[root] = Colour::Grey;
            let ch = succ(root);
            stack.push((root, ch, 0));
            while let Some((v, children, idx)) = stack.last_mut() {
                if *idx < children.len() {
                    let w = children[*idx];
                    *idx += 1;
                    match colour[w] {
                        Colour::White => {
                            colour[w] = Colour::Grey;
                            let ch = succ(w);
                            stack.push((w, ch, 0));
                        }
                        Colour::Grey => {
                            // Back edge v → w: the cycle is the grey path
                            // from w down to v.
                            let start = stack
                                .iter()
                                .position(|&(node, _, _)| node == w)
                                .expect("grey node is on the stack");
                            let mut ids: Vec<usize> =
                                stack[start..].iter().map(|&(node, _, _)| node).collect();
                            // Canonical rotation (smallest id first) so
                            // the same cycle found twice dedups.
                            let min_pos = ids
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, &id)| id)
                                .map_or(0, |(i, _)| i);
                            ids.rotate_left(min_pos);
                            if seen.insert(ids.clone()) {
                                let mut names: Vec<String> =
                                    ids.iter().map(|&id| st.names[id].clone()).collect();
                                names.push(names[0].clone());
                                cycles.push(names);
                            }
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[*v] = Colour::Black;
                    stack.pop();
                }
            }
        }
        cycles
    }
}

/// A [`CsLock`] wrapper that reports its acquisition order to a shared
/// [`LockOrderGraph`]. Recording happens only in builds with
/// `debug_assertions`; otherwise the wrapper is a plain delegate.
pub struct Ordered<L> {
    inner: L,
    id: OrderedLockId,
    graph: Arc<LockOrderGraph>,
}

impl<L: CsLock> Ordered<L> {
    /// Wrap `inner`, registering it with `graph` under `name`.
    pub fn new(inner: L, name: &str, graph: &Arc<LockOrderGraph>) -> Self {
        Self {
            inner,
            id: graph.register(name),
            graph: graph.clone(),
        }
    }

    /// This lock's id in the graph.
    pub fn id(&self) -> OrderedLockId {
        self.id
    }
}

impl<L: CsLock> CsLock for Ordered<L> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn acquire(&self, class: PathClass) -> CsToken {
        if cfg!(debug_assertions) {
            self.graph.note_acquire(self.id);
        }
        self.inner.acquire(class)
    }

    fn release(&self, class: PathClass, token: CsToken) {
        self.inner.release(class, token);
        if cfg!(debug_assertions) {
            self.graph.note_release(self.id);
        }
    }

    fn try_acquire(&self, class: PathClass) -> Option<CsToken> {
        let token = self.inner.try_acquire(class)?;
        // Only a *successful* try counts as a hold; a failed try never
        // blocks, so it cannot participate in a deadlock.
        if cfg!(debug_assertions) {
            self.graph.note_acquire(self.id);
        }
        Some(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmpi_locks::TicketLock;

    #[test]
    fn consistent_order_has_no_cycle() {
        let g = Arc::new(LockOrderGraph::new());
        let a = Ordered::new(TicketLock::new(), "A", &g);
        let b = Ordered::new(TicketLock::new(), "B", &g);
        for _ in 0..3 {
            let ta = a.acquire(PathClass::Main);
            let tb = b.acquire(PathClass::Main);
            b.release(PathClass::Main, tb);
            a.release(PathClass::Main, ta);
        }
        assert_eq!(g.edge_count(), 1);
        assert!(g.potential_deadlocks().is_empty());
    }

    #[test]
    fn opposite_orders_are_a_potential_deadlock() {
        let g = Arc::new(LockOrderGraph::new());
        let a = Ordered::new(TicketLock::new(), "queue", &g);
        let b = Ordered::new(TicketLock::new(), "progress", &g);
        // Path 1: queue then progress.
        let ta = a.acquire(PathClass::Main);
        let tb = b.acquire(PathClass::Main);
        b.release(PathClass::Main, tb);
        a.release(PathClass::Main, ta);
        // Path 2: progress then queue — opposite order. The deadlock
        // needs two threads to fire, but the *ordering* evidence is
        // complete from one.
        let tb = b.acquire(PathClass::Main);
        let ta = a.acquire(PathClass::Main);
        a.release(PathClass::Main, ta);
        b.release(PathClass::Main, tb);
        let cycles = g.potential_deadlocks();
        assert_eq!(cycles.len(), 1, "exactly one cycle expected: {cycles:?}");
        assert_eq!(cycles[0], vec!["queue", "progress", "queue"]);
    }

    #[test]
    fn cross_vci_abba_cycle_is_detected_per_shard() {
        // Per-VCI queue locks are distinct graph nodes, not one
        // collapsed "queue" node. The sharded runtime's discipline is
        // one-shard-at-a-time (cross-shard wildcard handoff goes through
        // an atomic claim token, never nested shard locks), so this ABBA
        // pattern can only come from a regression — and the graph must
        // catch it rather than dedupe the shards into a self-edge.
        let g = Arc::new(LockOrderGraph::new());
        let v0 = Ordered::new(TicketLock::new(), "r0.vci0.queue", &g);
        let v1 = Ordered::new(TicketLock::new(), "r0.vci1.queue", &g);
        // Buggy path 1: shard 0 then shard 1.
        let t0 = v0.acquire(PathClass::Main);
        let t1 = v1.acquire(PathClass::Main);
        v1.release(PathClass::Main, t1);
        v0.release(PathClass::Main, t0);
        // Buggy path 2: shard 1 then shard 0.
        let t1 = v1.acquire(PathClass::Progress);
        let t0 = v0.acquire(PathClass::Progress);
        v0.release(PathClass::Progress, t0);
        v1.release(PathClass::Progress, t1);
        let cycles = g.potential_deadlocks();
        assert_eq!(
            cycles.len(),
            1,
            "cross-VCI ABBA must be flagged: {cycles:?}"
        );
        assert_eq!(
            cycles[0],
            vec!["r0.vci0.queue", "r0.vci1.queue", "r0.vci0.queue"]
        );
    }

    #[test]
    fn three_lock_cycle_across_threads() {
        let g = Arc::new(LockOrderGraph::new());
        let locks: Vec<_> = (0..3)
            .map(|i| Arc::new(Ordered::new(TicketLock::new(), &format!("L{i}"), &g)))
            .collect();
        // Thread i takes L_i then L_{(i+1)%3}: a 3-cycle in the order
        // graph even though this particular run cannot deadlock (each
        // thread is joined before the graph is queried).
        let mut handles = Vec::new();
        for i in 0..3usize {
            let (a, b) = (locks[i].clone(), locks[(i + 1) % 3].clone());
            handles.push(std::thread::spawn(move || {
                let ta = a.acquire(PathClass::Main);
                let tb = b.acquire(PathClass::Main);
                b.release(PathClass::Main, tb);
                a.release(PathClass::Main, ta);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let cycles = g.potential_deadlocks();
        assert_eq!(cycles.len(), 1, "one 3-cycle expected: {cycles:?}");
        assert_eq!(cycles[0].len(), 4);
    }

    #[test]
    fn failed_try_acquire_records_nothing() {
        let g = Arc::new(LockOrderGraph::new());
        let a = Ordered::new(TicketLock::new(), "A", &g);
        let b = Ordered::new(TicketLock::new(), "B", &g);
        let ta = a.acquire(PathClass::Main);
        // `a` is held, so try_acquire on `a` from this thread fails
        // (ticket try_lock on a held lock); no edge and no phantom hold.
        assert!(a.try_acquire(PathClass::Main).is_none());
        let tb = b.try_acquire(PathClass::Main).expect("uncontended");
        b.release(PathClass::Main, tb);
        a.release(PathClass::Main, ta);
        assert!(g.potential_deadlocks().is_empty());
        assert_eq!(g.edge_count(), 1, "only a → b from the successful try");
    }
}
