//! `mtmpi-check` — dynamic correctness checkers for the lock & runtime
//! layers of the PPoPP'15 reproduction.
//!
//! Three analyses, one per module:
//!
//! * [`lock_order`] — a lockdep-style acquired-while-holding graph with
//!   cycle detection. Wrap any `CsLock` in [`Ordered`] and query
//!   [`LockOrderGraph::potential_deadlocks`]; a cycle means two code
//!   paths take the same locks in opposite orders.
//! * [`invariants`] — checkers over the acquisition traces produced by
//!   `mtmpi_locks::Traced`: [`fifo_violations`] proves a "FIFO" lock
//!   barged, [`check_starvation`] turns the paper's §4.3 bias analysis
//!   into a thresholded pass/fail detector.
//! * [`leaks`] — the request life-cycle ledger ([`RequestLedger`]); the
//!   runtime bumps it at every Issue/Post/Complete/Free transition and
//!   asserts quiescence when the `World` drops, so a dropped `Request`
//!   handle or a lost completion fails loudly in debug builds.
//!
//! The loom model-checking tier lives in `mtmpi-locks` itself
//! (`cargo test -p mtmpi-locks --features loom-check`); this crate covers
//! the dynamic analyses that run in ordinary debug-build test runs.

pub mod invariants;
pub mod leaks;
pub mod lock_order;

pub use invariants::{check_starvation, fifo_violations, StarvationReport, StarvationThresholds};
pub use leaks::{LeakReport, RequestLedger, SharedLedger};
pub use lock_order::{LockOrderGraph, Ordered, OrderedLockId};
