//! Critical-section invariant checkers over acquisition traces.
//!
//! These run over the [`CsTrace`] streams produced by
//! `mtmpi_locks::Traced` (or by the virtual platform's lock models) and
//! check the properties the paper's remedies are supposed to deliver:
//!
//! * [`fifo_violations`] — a FIFO lock (ticket, MCS, CLH) can never grant
//!   the same owner twice in a row while other threads were already
//!   queued at the first grant; any such pair of records proves the lock
//!   barged.
//! * [`check_starvation`] — the §4.3 fairness analysis turned into a
//!   pass/fail detector: core-level bias factor (via
//!   [`mtmpi_metrics::BiasAnalysis`]), Jain index, and longest monopoly
//!   run, each compared against a threshold.

use mtmpi_metrics::{BiasAnalysis, CsTrace};

/// One FIFO-order violation found in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoViolation {
    /// Index (into `trace.records()`) of the *second* grant of the pair.
    pub index: usize,
    /// The owner that re-acquired past waiting threads.
    pub owner: u32,
    /// How many threads were already waiting when the owner was first
    /// granted the lock (all of them arrived before its re-request).
    pub waiting_before: u32,
}

/// Find all FIFO violations in a trace.
///
/// Soundness of the rule: record `i` says `waiting` threads were queued at
/// the moment owner `O` was granted the lock. Those threads requested the
/// lock *before* `O` could possibly re-request it (`O` was busy holding
/// it). A first-come-first-served arbiter must therefore serve one of
/// them next; if record `i+1` is again `O` with `waiting > 0` at record
/// `i`, the arbiter let `O` barge past the queue.
pub fn fifo_violations(trace: &CsTrace) -> Vec<FifoViolation> {
    let recs = trace.records();
    recs.windows(2)
        .enumerate()
        .filter_map(|(i, w)| {
            let (prev, cur) = (&w[0], &w[1]);
            (cur.owner == prev.owner && prev.waiting > 0).then_some(FifoViolation {
                index: i + 1,
                owner: cur.owner,
                waiting_before: prev.waiting,
            })
        })
        .collect()
}

/// Thresholds for [`check_starvation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarvationThresholds {
    /// Maximum acceptable core-level bias factor (observed / fair
    /// probability of consecutive re-acquisition). The paper measures
    /// ≈2.0 for the NPTL mutex and ≈1.0 for ticket; 1.5 splits them.
    pub max_core_bias: f64,
    /// Minimum acceptable Jain fairness index over per-thread
    /// acquisition counts (1.0 = perfectly fair, 1/n = one thread owns
    /// everything).
    pub min_jain_index: f64,
    /// Maximum acceptable run of consecutive acquisitions by one thread.
    pub max_monopoly_run: usize,
}

impl Default for StarvationThresholds {
    fn default() -> Self {
        Self {
            max_core_bias: 1.5,
            min_jain_index: 0.5,
            max_monopoly_run: 64,
        }
    }
}

/// Outcome of [`check_starvation`]: the measured statistics plus a list
/// of human-readable findings (empty = fair).
#[derive(Debug, Clone, PartialEq)]
pub struct StarvationReport {
    /// Core-level bias factor, if the trace had contended samples.
    pub core_bias: Option<f64>,
    /// Socket-level bias factor, if the trace had contended samples.
    pub socket_bias: Option<f64>,
    /// Jain fairness index of the per-thread acquisition counts.
    pub jain_index: f64,
    /// Longest run of consecutive acquisitions by a single thread.
    pub longest_monopoly: usize,
    /// Threshold violations, one sentence each.
    pub findings: Vec<String>,
}

impl StarvationReport {
    /// Whether the trace passed every threshold.
    pub fn is_fair(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run the starvation/bias detectors over a trace.
pub fn check_starvation(trace: &CsTrace, th: &StarvationThresholds) -> StarvationReport {
    let analysis = BiasAnalysis::from_trace(trace);
    let factors = analysis.factors();
    let jain = trace.jain_index();
    let monopoly = trace.longest_monopoly();
    let mut findings = Vec::new();
    if let Some(f) = factors {
        if f.core > th.max_core_bias {
            findings.push(format!(
                "core-level bias factor {:.2} exceeds {:.2} (same thread re-acquires {:.0}% of \
                 contended grants vs {:.0}% under fair arbitration)",
                f.core,
                th.max_core_bias,
                analysis.pc_observed * 100.0,
                analysis.pc_fair * 100.0
            ));
        }
    }
    if jain < th.min_jain_index {
        findings.push(format!(
            "Jain fairness index {:.3} below {:.3} over {} acquisitions",
            jain,
            th.min_jain_index,
            trace.len()
        ));
    }
    if monopoly > th.max_monopoly_run {
        findings.push(format!(
            "one thread held the lock {monopoly} times in a row (limit {})",
            th.max_monopoly_run
        ));
    }
    StarvationReport {
        core_bias: factors.map(|f| f.core),
        socket_bias: factors.map(|f| f.socket),
        jain_index: jain,
        longest_monopoly: monopoly,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmpi_metrics::AcquisitionRecord;
    use mtmpi_topology::{CoreId, SocketId};

    fn rec(owner: u32, waiting: u32) -> AcquisitionRecord {
        AcquisitionRecord {
            owner,
            core: CoreId(owner),
            socket: SocketId(owner / 4),
            waiting,
            waiting_per_socket: vec![waiting, 0],
            t_ns: 0,
            wait_ns: 0,
        }
    }

    #[test]
    fn fifo_clean_round_robin() {
        let mut t = CsTrace::new();
        for i in 0..100u32 {
            t.push(rec(i % 4, 3));
        }
        assert!(fifo_violations(&t).is_empty());
    }

    #[test]
    fn fifo_barging_is_flagged() {
        let mut t = CsTrace::new();
        t.push(rec(0, 2)); // two threads queued while 0 holds…
        t.push(rec(0, 1)); // …and 0 wins again: barging.
        t.push(rec(1, 0));
        let v = fifo_violations(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0],
            FifoViolation {
                index: 1,
                owner: 0,
                waiting_before: 2
            }
        );
    }

    #[test]
    fn fifo_uncontended_reacquire_is_legal() {
        // Nobody was waiting: the owner re-acquiring is fine.
        let mut t = CsTrace::new();
        t.push(rec(0, 0));
        t.push(rec(0, 0));
        assert!(fifo_violations(&t).is_empty());
    }

    #[test]
    fn starvation_fair_trace_passes() {
        let mut t = CsTrace::new();
        for i in 0..400u32 {
            t.push(rec(i % 4, 3));
        }
        let r = check_starvation(&t, &StarvationThresholds::default());
        assert!(r.is_fair(), "findings: {:?}", r.findings);
        assert!(r.core_bias.unwrap() < 0.5);
    }

    #[test]
    fn starvation_monopolizing_trace_fails_everything() {
        // Thread 0 wins 99 of every 100 contended grants.
        let mut t = CsTrace::new();
        for i in 0..4000u32 {
            let owner = if i % 100 == 99 { 1 + (i / 100) % 3 } else { 0 };
            t.push(rec(owner, 3));
        }
        let r = check_starvation(&t, &StarvationThresholds::default());
        assert!(!r.is_fair());
        assert!(r.core_bias.unwrap() > 1.5, "core bias {:?}", r.core_bias);
        assert!(r.jain_index < 0.5, "jain {}", r.jain_index);
        assert!(r.longest_monopoly > 64);
        assert_eq!(
            r.findings.len(),
            3,
            "all three detectors fire: {:?}",
            r.findings
        );
    }

    #[test]
    fn starvation_empty_trace_is_fair() {
        let r = check_starvation(&CsTrace::new(), &StarvationThresholds::default());
        assert!(r.is_fair());
        assert!(r.core_bias.is_none());
    }
}
