//! Hybrid MPI+threads 3D 7-point stencil (heat equation), the paper's
//! §6.2.2 kernel.
//!
//! The global domain is decomposed across ranks along all three
//! dimensions ("our decomposition methodology tries to reduce the
//! internode communication by dividing the domain along all dimensions");
//! each rank's subdomain is further split among threads along the *least*
//! strided dimension (z slabs, so the per-thread data stays contiguous —
//! "we avoid splitting the process subdomain along the most strided
//! dimensions for better cache performance").
//!
//! Unlike `MPI_THREAD_FUNNELED` stencils, **every thread independently
//! performs its own halo communication** — nonblocking send/recv plus
//! `waitall` per iteration — and threads synchronize only at the end of
//! an iteration. Each thread has at most 8 requests in flight per
//! iteration, which is why the priority lock gains nothing over the
//! ticket lock here (§6.2.2): the per-iteration main-path entry rate is
//! negligible next to the progress-loop polling in `waitall`.
//!
//! The kernel keeps real `f64` data and Jacobi-updates it, so the
//! distributed result is validated cell-for-cell against the serial
//! reference. Phase timers give the Fig 11b breakdown: MPI (halo
//! exchange), computation, and thread synchronization.

use mtmpi_runtime::{MsgData, RankHandle, Request};
use mtmpi_sim::SpinBarrier;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Diffusion coefficient used by every run in the workspace.
pub const ALPHA: f64 = 0.1;

/// Deterministic initial condition as a function of *global* coordinates.
pub fn initial_value(x: usize, y: usize, z: usize) -> f64 {
    (((x * 31 + y) * 37 + z) % 97) as f64 / 97.0
}

/// Time breakdown of one rank (summed over its threads), in model ns —
/// the Fig 11b components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Time inside MPI calls (halo isend/irecv/waitall).
    pub mpi_ns: u64,
    /// Time computing the stencil.
    pub compute_ns: u64,
    /// Time waiting at the per-iteration thread barrier.
    pub sync_ns: u64,
}

impl PhaseStats {
    /// Merge another thread's times.
    pub fn merge(&mut self, o: &PhaseStats) {
        self.mpi_ns += o.mpi_ns;
        self.compute_ns += o.compute_ns;
        self.sync_ns += o.sync_ns;
    }

    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.mpi_ns + self.compute_ns + self.sync_ns
    }
}

/// Problem + machine-mapping description.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// Global domain cells per dimension (x, y, z).
    pub global: (usize, usize, usize),
    /// Process grid (px, py, pz); `px*py*pz` ranks.
    pub pgrid: (u32, u32, u32),
    /// Jacobi iterations.
    pub iters: u32,
    /// Threads per rank (z-slab decomposition).
    pub threads: u32,
    /// Modelled cost of one cell update, ns (≈8 flops + loads).
    pub cell_ns: u64,
}

impl StencilConfig {
    /// Total ranks.
    pub fn nranks(&self) -> u32 {
        self.pgrid.0 * self.pgrid.1 * self.pgrid.2
    }

    /// Per-rank local dims (requires divisibility).
    pub fn local_dims(&self) -> (usize, usize, usize) {
        let (gx, gy, gz) = self.global;
        let (px, py, pz) = self.pgrid;
        assert!(
            gx % px as usize == 0 && gy % py as usize == 0 && gz % pz as usize == 0,
            "global dims must divide by the process grid"
        );
        (gx / px as usize, gy / py as usize, gz / pz as usize)
    }

    /// Coordinates of a rank in the process grid.
    pub fn coords(&self, rank: u32) -> (u32, u32, u32) {
        let (px, py, _) = self.pgrid;
        (rank % px, (rank / px) % py, rank / (px * py))
    }

    /// Rank at grid coordinates, if inside the grid.
    pub fn rank_at(&self, cx: i64, cy: i64, cz: i64) -> Option<u32> {
        let (px, py, pz) = self.pgrid;
        if cx < 0
            || cy < 0
            || cz < 0
            || cx >= i64::from(px)
            || cy >= i64::from(py)
            || cz >= i64::from(pz)
        {
            return None;
        }
        Some((cx + i64::from(px) * (cy + i64::from(py) * cz)) as u32)
    }

    /// Total flops of the whole run (8 per cell update).
    pub fn total_flops(&self) -> u64 {
        let (gx, gy, gz) = self.global;
        (gx * gy * gz) as u64 * 8 * u64::from(self.iters)
    }
}

/// The six halo directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Xm,
    Xp,
    Ym,
    Yp,
    Zm,
    Zp,
}

const DIRS: [Dir; 6] = [Dir::Xm, Dir::Xp, Dir::Ym, Dir::Yp, Dir::Zm, Dir::Zp];

impl Dir {
    fn offset(self) -> (i64, i64, i64) {
        match self {
            Dir::Xm => (-1, 0, 0),
            Dir::Xp => (1, 0, 0),
            Dir::Ym => (0, -1, 0),
            Dir::Yp => (0, 1, 0),
            Dir::Zm => (0, 0, -1),
            Dir::Zp => (0, 0, 1),
        }
    }

    fn opposite(self) -> Dir {
        match self {
            Dir::Xm => Dir::Xp,
            Dir::Xp => Dir::Xm,
            Dir::Ym => Dir::Yp,
            Dir::Yp => Dir::Ym,
            Dir::Zm => Dir::Zp,
            Dir::Zp => Dir::Zm,
        }
    }

    fn index(self) -> usize {
        match self {
            Dir::Xm => 0,
            Dir::Xp => 1,
            Dir::Ym => 2,
            Dir::Yp => 3,
            Dir::Zm => 4,
            Dir::Zp => 5,
        }
    }
}

/// Halo-message tag: direction × thread-portion × iteration parity.
fn halo_tag(dir: Dir, portion: u32, iter: u32) -> i32 {
    2_000 + ((dir.index() as i32 * 256 + portion as i32) * 2 + (iter & 1) as i32)
}

struct Grid {
    data: UnsafeCell<Vec<f64>>,
}

// SAFETY: a Grid is only moved while no thread borrows its buffers (the
// owning RankStencil is built before the worker threads start).
unsafe impl Send for Grid {}
// SAFETY: threads write disjoint z-slabs between barriers; reads of the
// previous buffer are shared-read-only during the compute phase.
unsafe impl Sync for Grid {}

/// Per-rank stencil state shared by its threads.
pub struct RankStencil {
    cfg: StencilConfig,
    rank: u32,
    /// Local interior dims.
    nx: usize,
    ny: usize,
    nz: usize,
    bufs: [Grid; 2],
    barrier: SpinBarrier,
    stats: Mutex<PhaseStats>,
}

impl RankStencil {
    /// Allocate and initialize the rank's subdomain (ghost layer zeroed).
    pub fn new(cfg: &StencilConfig, rank: u32) -> Self {
        let (nx, ny, nz) = cfg.local_dims();
        let (cx, cy, cz) = cfg.coords(rank);
        let len = (nx + 2) * (ny + 2) * (nz + 2);
        let mut init = vec![0.0f64; len];
        let idx = |x: usize, y: usize, z: usize| ((z * (ny + 2)) + y) * (nx + 2) + x;
        for z in 1..=nz {
            for y in 1..=ny {
                for x in 1..=nx {
                    let gx = cx as usize * nx + (x - 1);
                    let gy = cy as usize * ny + (y - 1);
                    let gz = cz as usize * nz + (z - 1);
                    init[idx(x, y, z)] = initial_value(gx, gy, gz);
                }
            }
        }
        Self {
            cfg: cfg.clone(),
            rank,
            nx,
            ny,
            nz,
            bufs: [
                Grid {
                    data: UnsafeCell::new(init.clone()),
                },
                Grid {
                    data: UnsafeCell::new(init),
                },
            ],
            barrier: SpinBarrier::new(cfg.threads),
            stats: Mutex::new(PhaseStats::default()),
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        ((z * (self.ny + 2)) + y) * (self.nx + 2) + x
    }

    /// Neighbour rank in a direction, if any.
    fn neighbor(&self, dir: Dir) -> Option<u32> {
        let (cx, cy, cz) = self.cfg.coords(self.rank);
        let (dx, dy, dz) = dir.offset();
        self.cfg
            .rank_at(i64::from(cx) + dx, i64::from(cy) + dy, i64::from(cz) + dz)
    }

    /// Interior cells of the rank after the run (x-major), for
    /// validation.
    pub fn interior(&self) -> Vec<f64> {
        // SAFETY: called post-run, exclusive.
        let buf = unsafe { &*self.bufs[(self.cfg.iters % 2) as usize].data.get() };
        let mut out = Vec::with_capacity(self.nx * self.ny * self.nz);
        for z in 1..=self.nz {
            for y in 1..=self.ny {
                for x in 1..=self.nx {
                    out.push(buf[self.idx(x, y, z)]);
                }
            }
        }
        out
    }

    /// This thread's z range `[z0, z1)` (1-based interior coordinates).
    fn slab(&self, thread: u32) -> (usize, usize) {
        let t = thread as usize;
        let nth = self.cfg.threads as usize;
        let base = self.nz / nth;
        let extra = self.nz % nth;
        let z0 = 1 + t * base + t.min(extra);
        let z1 = z0 + base + usize::from(t < extra);
        (z0, z1)
    }
}

/// Extract a face plane from `buf` for sending.
#[allow(clippy::too_many_arguments)]
fn pack_face(st: &RankStencil, buf: &[f64], dir: Dir, z0: usize, z1: usize) -> Vec<u8> {
    let mut out: Vec<f64> = Vec::new();
    match dir {
        Dir::Xm | Dir::Xp => {
            let x = if dir == Dir::Xm { 1 } else { st.nx };
            for z in z0..z1 {
                for y in 1..=st.ny {
                    out.push(buf[st.idx(x, y, z)]);
                }
            }
        }
        Dir::Ym | Dir::Yp => {
            let y = if dir == Dir::Ym { 1 } else { st.ny };
            for z in z0..z1 {
                for x in 1..=st.nx {
                    out.push(buf[st.idx(x, y, z)]);
                }
            }
        }
        Dir::Zm | Dir::Zp => {
            let z = if dir == Dir::Zm { 1 } else { st.nz };
            for y in 1..=st.ny {
                for x in 1..=st.nx {
                    out.push(buf[st.idx(x, y, z)]);
                }
            }
        }
    }
    let mut bytes = Vec::with_capacity(out.len() * 8);
    for v in out {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Write a received face into the ghost layer of `buf`.
fn unpack_ghost(st: &RankStencil, buf: &mut [f64], dir: Dir, z0: usize, z1: usize, bytes: &[u8]) {
    let vals: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let mut it = vals.into_iter();
    match dir {
        Dir::Xm | Dir::Xp => {
            let x = if dir == Dir::Xm { 0 } else { st.nx + 1 };
            for z in z0..z1 {
                for y in 1..=st.ny {
                    buf[st.idx(x, y, z)] = it.next().expect("face size");
                }
            }
        }
        Dir::Ym | Dir::Yp => {
            let y = if dir == Dir::Ym { 0 } else { st.ny + 1 };
            for z in z0..z1 {
                for x in 1..=st.nx {
                    buf[st.idx(x, y, z)] = it.next().expect("face size");
                }
            }
        }
        Dir::Zm | Dir::Zp => {
            let z = if dir == Dir::Zm { 0 } else { st.nz + 1 };
            for y in 1..=st.ny {
                for x in 1..=st.nx {
                    buf[st.idx(x, y, z)] = it.next().expect("face size");
                }
            }
        }
    }
}

/// Run one thread's share of the stencil. All threads of every rank call
/// this; thread 0 returns the rank's summed phase stats.
pub fn stencil_thread(st: &RankStencil, h: &RankHandle, thread: u32) -> Option<PhaseStats> {
    let platform = h.platform().clone();
    let c = h.world_comm();
    let (z0, z1) = st.slab(thread);
    let mut mine = PhaseStats::default();
    let top_thread = thread == st.cfg.threads - 1;
    let bottom_thread = thread == 0;
    for iter in 0..st.cfg.iters {
        let cur = (iter % 2) as usize;
        // SAFETY: `old` is written only in the previous iteration before
        // the barrier; during this phase all threads only read it (plus
        // each thread writes its own ghost entries of `old`, which no
        // other thread touches: x/y ghosts are per-slab, z ghosts belong
        // to the boundary threads).
        let old: &mut Vec<f64> = unsafe { &mut *st.bufs[cur].data.get() };
        // ---- halo exchange (each thread its own faces) ----
        let t_mpi = platform.now_ns();
        let mut recvs: Vec<(Dir, Request)> = Vec::new();
        let mut sends: Vec<Request> = Vec::new();
        for dir in DIRS {
            let (is_z, portion) = match dir {
                Dir::Zm => (true, 0u32),
                Dir::Zp => (true, 0u32),
                _ => (false, thread),
            };
            // z faces are exchanged only by the boundary threads.
            if matches!(dir, Dir::Zm) && !bottom_thread {
                continue;
            }
            if matches!(dir, Dir::Zp) && !top_thread {
                continue;
            }
            let _ = is_z;
            if let Some(nb) = st.neighbor(dir) {
                recvs.push((
                    dir,
                    c.irecv(Some(nb), Some(halo_tag(dir.opposite(), portion, iter))),
                ));
                let face = pack_face(st, old, dir, z0, z1);
                sends.push(c.isend(nb, halo_tag(dir, portion, iter), MsgData::Bytes(face)));
            }
        }
        let dirs: Vec<Dir> = recvs.iter().map(|(d, _)| *d).collect();
        let msgs = c.waitall(recvs.into_iter().map(|(_, r)| r).collect());
        for (dir, m) in dirs.into_iter().zip(msgs) {
            unpack_ghost(st, old, dir, z0, z1, m.data.as_bytes());
        }
        c.waitall(sends);
        mine.mpi_ns += platform.now_ns() - t_mpi;
        // ---- compute: Jacobi update of my slab ----
        let t_comp = platform.now_ns();
        {
            // SAFETY: each thread writes only its own slab of `new`.
            let new: &mut Vec<f64> = unsafe { &mut *st.bufs[1 - cur].data.get() };
            let mut cells = 0u64;
            for z in z0..z1 {
                for y in 1..=st.ny {
                    for x in 1..=st.nx {
                        let c = old[st.idx(x, y, z)];
                        let sum = old[st.idx(x - 1, y, z)]
                            + old[st.idx(x + 1, y, z)]
                            + old[st.idx(x, y - 1, z)]
                            + old[st.idx(x, y + 1, z)]
                            + old[st.idx(x, y, z - 1)]
                            + old[st.idx(x, y, z + 1)];
                        new[st.idx(x, y, z)] = c + ALPHA * (sum - 6.0 * c);
                        cells += 1;
                    }
                }
            }
            platform.compute(cells * st.cfg.cell_ns);
        }
        mine.compute_ns += platform.now_ns() - t_comp;
        // ---- end-of-iteration thread sync ----
        let t_sync = platform.now_ns();
        st.barrier.wait(platform.as_ref());
        mine.sync_ns += platform.now_ns() - t_sync;
    }
    st.stats.lock().merge(&mine);
    st.barrier.wait(platform.as_ref());
    if thread == 0 {
        Some(*st.stats.lock())
    } else {
        None
    }
}

/// Serial reference: same domain, same iterations, zero Dirichlet
/// boundary.
pub fn stencil_serial(global: (usize, usize, usize), iters: u32) -> Vec<f64> {
    let (nx, ny, nz) = global;
    let idx = |x: usize, y: usize, z: usize| ((z * (ny + 2)) + y) * (nx + 2) + x;
    let len = (nx + 2) * (ny + 2) * (nz + 2);
    let mut a = vec![0.0f64; len];
    let mut b = vec![0.0f64; len];
    for z in 1..=nz {
        for y in 1..=ny {
            for x in 1..=nx {
                a[idx(x, y, z)] = initial_value(x - 1, y - 1, z - 1);
            }
        }
    }
    for _ in 0..iters {
        for z in 1..=nz {
            for y in 1..=ny {
                for x in 1..=nx {
                    let c = a[idx(x, y, z)];
                    let sum = a[idx(x - 1, y, z)]
                        + a[idx(x + 1, y, z)]
                        + a[idx(x, y - 1, z)]
                        + a[idx(x, y + 1, z)]
                        + a[idx(x, y, z - 1)]
                        + a[idx(x, y, z + 1)];
                    b[idx(x, y, z)] = c + ALPHA * (sum - 6.0 * c);
                }
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    let mut out = Vec::with_capacity(nx * ny * nz);
    for z in 1..=nz {
        for y in 1..=ny {
            for x in 1..=nx {
                out.push(a[idx(x, y, z)]);
            }
        }
    }
    out
}

/// Stitch per-rank interiors into the global x-major array.
pub fn assemble_global(cfg: &StencilConfig, per_rank: &[Arc<RankStencil>]) -> Vec<f64> {
    let (gx, gy, gz) = cfg.global;
    let (nx, ny, nz) = cfg.local_dims();
    let mut out = vec![0.0; gx * gy * gz];
    for (r, st) in per_rank.iter().enumerate() {
        let (cx, cy, cz) = cfg.coords(r as u32);
        let interior = st.interior();
        let mut it = interior.into_iter();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let gxi = cx as usize * nx + x;
                    let gyi = cy as usize * ny + y;
                    let gzi = cz as usize * nz + z;
                    out[(gzi * gy + gyi) * gx + gxi] = it.next().expect("interior size");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let cfg = StencilConfig {
            global: (8, 8, 8),
            pgrid: (2, 2, 2),
            iters: 1,
            threads: 2,
            cell_ns: 2,
        };
        assert_eq!(cfg.nranks(), 8);
        assert_eq!(cfg.local_dims(), (4, 4, 4));
        assert_eq!(cfg.coords(0), (0, 0, 0));
        assert_eq!(cfg.coords(7), (1, 1, 1));
        assert_eq!(cfg.rank_at(1, 1, 1), Some(7));
        assert_eq!(cfg.rank_at(-1, 0, 0), None);
        assert_eq!(cfg.rank_at(2, 0, 0), None);
    }

    #[test]
    fn slab_partition_covers_interior() {
        let cfg = StencilConfig {
            global: (4, 4, 10),
            pgrid: (1, 1, 1),
            iters: 1,
            threads: 3,
            cell_ns: 2,
        };
        let st = RankStencil::new(&cfg, 0);
        let mut covered = vec![false; st.nz];
        for t in 0..3 {
            let (z0, z1) = st.slab(t);
            for z in z0..z1 {
                assert!(!covered[z - 1], "overlap at z {z}");
                covered[z - 1] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "full coverage");
    }

    #[test]
    fn serial_conserves_roughly() {
        // Diffusion with zero boundary leaks energy but never grows it.
        let before: f64 = (0..6)
            .flat_map(|z| (0..6).flat_map(move |y| (0..6).map(move |x| initial_value(x, y, z))))
            .sum();
        let after: f64 = stencil_serial((6, 6, 6), 10).iter().sum();
        assert!(after <= before + 1e-9);
        assert!(after > 0.0);
    }

    #[test]
    fn dir_opposites() {
        for d in DIRS {
            assert_eq!(d.opposite().opposite(), d);
            let (a, b, c) = d.offset();
            let (x, y, z) = d.opposite().offset();
            assert_eq!((a + x, b + y, c + z), (0, 0, 0));
        }
    }
}
