//! Distributed stencil vs serial reference.

use mtmpi::prelude::*;
use mtmpi_stencil::{assemble_global, stencil_serial, stencil_thread, RankStencil, StencilConfig};
use std::sync::Arc;

fn run_distributed(cfg: &StencilConfig, method: Method, nodes: u32, seed: u64) -> Vec<f64> {
    let per_rank: Vec<Arc<RankStencil>> = (0..cfg.nranks())
        .map(|r| Arc::new(RankStencil::new(cfg, r)))
        .collect();
    let exp = Experiment::with_seed(nodes, seed);
    let ranks_per_node = cfg.nranks() / nodes;
    let pr = per_rank.clone();
    let out = exp.run(
        RunConfig::new(method)
            .nodes(nodes)
            .ranks_per_node(ranks_per_node)
            .threads_per_rank(cfg.threads),
        move |ctx| {
            let st = pr[ctx.rank.rank() as usize].clone();
            let _ = stencil_thread(&st, &ctx.rank, ctx.thread);
        },
    );
    assert!(out.end_ns > 0);
    assemble_global(cfg, &per_rank)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn two_by_one_by_one_matches_serial() {
    let cfg = StencilConfig {
        global: (8, 6, 6),
        pgrid: (2, 1, 1),
        iters: 4,
        threads: 2,
        cell_ns: 2,
    };
    let got = run_distributed(&cfg, Method::Ticket, 2, 1);
    let want = stencil_serial(cfg.global, cfg.iters);
    assert!(
        max_abs_diff(&got, &want) < 1e-12,
        "distributed must equal serial"
    );
}

#[test]
fn full_3d_grid_matches_serial() {
    let cfg = StencilConfig {
        global: (8, 8, 8),
        pgrid: (2, 2, 2),
        iters: 5,
        threads: 2,
        cell_ns: 2,
    };
    let got = run_distributed(&cfg, Method::Priority, 8, 2);
    let want = stencil_serial(cfg.global, cfg.iters);
    assert!(max_abs_diff(&got, &want) < 1e-12);
}

#[test]
fn lock_method_does_not_change_numerics() {
    let cfg = StencilConfig {
        global: (6, 6, 8),
        pgrid: (1, 1, 2),
        iters: 3,
        threads: 4,
        cell_ns: 2,
    };
    let a = run_distributed(&cfg, Method::Mutex, 2, 3);
    let b = run_distributed(&cfg, Method::Ticket, 2, 3);
    assert!(max_abs_diff(&a, &b) < 1e-15);
}

#[test]
fn single_rank_many_threads() {
    let cfg = StencilConfig {
        global: (6, 6, 12),
        pgrid: (1, 1, 1),
        iters: 6,
        threads: 5, // uneven slabs: 12 cells over 5 threads
        cell_ns: 2,
    };
    let got = run_distributed(&cfg, Method::Ticket, 1, 4);
    let want = stencil_serial(cfg.global, cfg.iters);
    assert!(max_abs_diff(&got, &want) < 1e-12);
}

#[test]
fn phase_stats_cover_time() {
    let cfg = StencilConfig {
        global: (8, 8, 8),
        pgrid: (2, 1, 1),
        iters: 3,
        threads: 2,
        cell_ns: 2,
    };
    let per_rank: Vec<Arc<RankStencil>> = (0..cfg.nranks())
        .map(|r| Arc::new(RankStencil::new(&cfg, r)))
        .collect();
    let stats = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let exp = Experiment::with_seed(2, 5);
    let (pr, st2) = (per_rank.clone(), stats.clone());
    exp.run(
        RunConfig::new(Method::Ticket)
            .nodes(2)
            .ranks_per_node(1)
            .threads_per_rank(cfg.threads),
        move |ctx| {
            let st = pr[ctx.rank.rank() as usize].clone();
            if let Some(s) = stencil_thread(&st, &ctx.rank, ctx.thread) {
                st2.lock().push(s);
            }
        },
    );
    let stats = stats.lock();
    assert_eq!(stats.len(), 2, "one report per rank");
    for s in stats.iter() {
        assert!(s.compute_ns > 0, "compute time accounted");
        assert!(s.mpi_ns > 0, "MPI time accounted");
        assert!(s.total_ns() > 0);
    }
}
