//! Property tests of the stencil substrate (geometry and numerics).

use mtmpi_stencil::{initial_value, stencil_serial, StencilConfig};
use proptest::prelude::*;

proptest! {
    /// Diffusion with zero Dirichlet boundary never increases total heat
    /// and never produces negatives from a non-negative start.
    #[test]
    fn diffusion_monotone(nx in 2usize..8, ny in 2usize..8, nz in 2usize..8, iters in 0u32..8) {
        let before: f64 = (0..nz)
            .flat_map(|z| (0..ny).flat_map(move |y| (0..nx).map(move |x| initial_value(x, y, z))))
            .sum();
        let out = stencil_serial((nx, ny, nz), iters);
        let after: f64 = out.iter().sum();
        prop_assert!(after <= before + 1e-9);
        prop_assert!(out.iter().all(|&v| v >= -1e-12), "negative heat");
    }

    /// Zero iterations returns the initial condition exactly.
    #[test]
    fn zero_iters_identity(nx in 1usize..6, ny in 1usize..6, nz in 1usize..6) {
        let out = stencil_serial((nx, ny, nz), 0);
        let mut it = out.iter();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    prop_assert_eq!(*it.next().expect("size"), initial_value(x, y, z));
                }
            }
        }
    }

    /// Process-grid geometry: coords/rank_at are inverse bijections.
    #[test]
    fn coords_roundtrip(px in 1u32..4, py in 1u32..4, pz in 1u32..4) {
        let cfg = StencilConfig {
            global: (px as usize * 2, py as usize * 2, pz as usize * 2),
            pgrid: (px, py, pz),
            iters: 1,
            threads: 1,
            cell_ns: 1,
        };
        for r in 0..cfg.nranks() {
            let (cx, cy, cz) = cfg.coords(r);
            prop_assert_eq!(cfg.rank_at(i64::from(cx), i64::from(cy), i64::from(cz)), Some(r));
        }
        // Out-of-grid coordinates resolve to None.
        prop_assert_eq!(cfg.rank_at(-1, 0, 0), None);
        prop_assert_eq!(cfg.rank_at(i64::from(px), 0, 0), None);
    }

    /// Total flops accounting is linear in iterations.
    #[test]
    fn flops_linear(iters in 1u32..20) {
        let mk = |it| StencilConfig {
            global: (8, 8, 8),
            pgrid: (1, 1, 1),
            iters: it,
            threads: 1,
            cell_ns: 1,
        };
        prop_assert_eq!(mk(iters).total_flops(), u64::from(iters) * mk(1).total_flops());
    }
}
