#!/usr/bin/env bash
# Full correctness gate for the lock & runtime layers. Runs every check
# the toolchain on this machine can support and skips (loudly) the ones
# it cannot, so the same script works in CI and on an offline dev box.
#
#   fmt        rustfmt, check mode
#   clippy     workspace lints table ([workspace.lints]) at -D warnings
#   lint       mtmpi-lint (rules L001-L006: Relaxed hand-off mutations,
#              Acquire-less published loads, nested critical sections,
#              determinism sources, panics on typed-error paths,
#              undocumented unsafe) over the whole workspace, gated by
#              crates/lint/baseline.txt (DESIGN.md section 13)
#   test       workspace test suite (includes mtmpi-check negative tests
#              and mtmpi-lint's fixture + whole-tree tests)
#   loom       model checking of the lock algorithms, the VCI claim
#              protocol, and the stream claim word (serialized-thread
#              shim; see crates/locks/src/sys.rs and crates/runtime/
#              tests/loom_claim.rs + loom_stream.rs)
#   tsan       ThreadSanitizer over the locks crate. Prefers an
#              instrumented std (`-Zbuild-std`, rust-src component):
#              with the prebuilt std, every Mutex/Condvar edge is
#              invisible to TSan and each one shows up as a false-positive
#              data race (verified: every warning on this tree implicates
#              accesses guarded by std::sync::Mutex — FutexMutex's sleeper
#              counter and libtest's own harness channel). Without
#              rust-src, falls back to the prebuilt std with those known
#              false positives suppressed via scripts/tsan.supp, naming
#              the narrowest guarded accessor functions (the
#              uninstrumented std leaves no std frames in the stacks to
#              match — see the policy comment in that file).
#   miri       UB check of the locks crate under cargo miri (nightly
#              component; skipped when not installed).
#   obs        observability smoke test: run fig2a traced in quick mode
#              via `xtask trace` and validate results/BENCH_fig2a.json
#              (including its prof blocks) and results/fig2a.trace.json
#              are well-formed JSON.
#   prof       bench regression gate: re-run the baselined figures in
#              quick mode, diff their BENCH_*.json quantiles and scalars
#              against results/baseline/, and replay each figure under
#              the reference heap event core requiring byte-identical
#              sched_trace_hashes (`xtask bench-diff --cross-core`).
#   faults     fault-injection smoke test: run the fig_fault drop-rate
#              sweep twice in quick mode and require byte-identical
#              BENCH output (the DESIGN.md §11 determinism contract).
#   vci        sharding smoke test: the VCI integration suite (cross-
#              shard wildcards, vci_count=1 byte-identity) plus the
#              fig_vci sweep twice in quick mode with a byte-identity
#              cmp — determinism must survive the sharded runtime too.
#   stream     stream smoke test: the stream integration suite
#              (streams=0 byte-identity, bind/rebind claim word,
#              lock-free wait timeouts, wildcard fallback) plus the
#              fig_stream sweep twice in quick mode with a byte-identity
#              cmp (DESIGN.md section 14).
#   scale      event-core gate: the fuel integration suite (livelock →
#              typed SimError::FuelExhausted through the full runtime),
#              then the fig_scale calendar-vs-heap sweep twice in quick
#              mode requiring byte-identical output after zeroing the
#              wall-clock scalars (sim_events_per_sec*/speedup_vs_heap*
#              measure *host* throughput and legitimately vary; every
#              other byte — ring results, churn parity hashes,
#              cross-core hash-match flags — must replay exactly).
#   serve      multi-tenant service gate: the mtmpi-serve suite (state
#              word, determinism across worker counts, fairness), then
#              the fig_serve sweep twice in quick mode — per-tenant
#              digests (results/fig_serve.tenants.txt) byte-identical,
#              BENCH output byte-identical after zeroing the wall-clock
#              serve_* scalars (DESIGN.md section 17).
#   live       live-observability smoke test: the mtmpi-live integration
#              suite (streaming blame == post-run BlameMatrix, window
#              conservation), fig2a twice same-seed under MTMPI_LIVE=1
#              asserting sched_trace_hash equality, then `xtask watch
#              fig2a --headless`, which validates results/fig2a.live.prom
#              (DESIGN.md section 15).
#
# Usage: scripts/check.sh [fast]   ("fast" skips loom/tsan/miri/obs/prof)
set -uo pipefail
cd "$(dirname "$0")/.."

FAST=${1:-}
FAIL=0
SKIPPED=()

step() {
    local name=$1; shift
    echo "=== $name: $* ==="
    if "$@"; then
        echo "--- $name: ok"
    else
        echo "--- $name: FAILED"
        FAIL=1
    fi
}

skip() {
    echo "=== $1: SKIPPED ($2)"
    SKIPPED+=("$1: $2")
}

step fmt    cargo fmt --all -- --check
step clippy cargo clippy --workspace --all-targets -- -D warnings
step lint   cargo run -q -p xtask -- lint
step test   cargo test --workspace -q

# Run the fault sweep twice and demand byte-identical output: same seed
# + same FaultPlan must replay exactly (DESIGN.md §11).
faults_smoke() {
    local snap
    snap=$(mktemp) || return 1
    cargo run --release -q -p mtmpi-bench --bin fig_fault -- --quick \
        && cp results/BENCH_fig_fault.json "$snap" \
        && cargo run --release -q -p mtmpi-bench --bin fig_fault -- --quick \
        && cmp results/BENCH_fig_fault.json "$snap"
    local rc=$?
    rm -f "$snap"
    return $rc
}

# Sharding gate: the VCI integration tests, then the fig_vci sweep twice
# with a byte-identity cmp (sharded runs replay exactly, like fault runs).
vci_smoke() {
    local snap
    snap=$(mktemp) || return 1
    cargo test --release -q -p mtmpi-integration-tests --test vci \
        && cargo run --release -q -p mtmpi-bench --bin fig_vci -- --quick \
        && cp results/BENCH_fig_vci.json "$snap" \
        && cargo run --release -q -p mtmpi-bench --bin fig_vci -- --quick \
        && cmp results/BENCH_fig_vci.json "$snap"
    local rc=$?
    rm -f "$snap"
    return $rc
}

# Event-core gate: fuel-exhaustion diagnosis through the runtime, then
# fig_scale twice with the measured-rate scalars normalized to zero
# (they are wall-clock, everything else in the document is virtual and
# must be byte-identical — including the in-process cross-core checks).
scale_smoke() {
    local s1 s2
    s1=$(mktemp) && s2=$(mktemp) || return 1
    strip_rates() {
        sed -E 's/"((sim_events_per_sec|speedup_vs_heap)[^"]*)":[-+0-9.eE]+/"\1":0/g' "$1"
    }
    cargo test --release -q -p mtmpi-integration-tests --test fuel \
        && cargo run --release -q -p mtmpi-bench --bin fig_scale -- --quick \
        && strip_rates results/BENCH_fig_scale.json > "$s1" \
        && cargo run --release -q -p mtmpi-bench --bin fig_scale -- --quick \
        && strip_rates results/BENCH_fig_scale.json > "$s2" \
        && cmp "$s1" "$s2"
    local rc=$?
    rm -f "$s1" "$s2"
    return $rc
}

# Service gate: the mtmpi-serve suite (includes the tenant-state loom
# models), then fig_serve twice in quick mode. The per-tenant digest is
# pure virtual-platform output and must replay byte-identically; the
# BENCH document must too once the wall-clock serve scalars
# (events/sec, p99 latency, hold Gini, wall ms — host-dependent) are
# zeroed. Everything else — event totals, grant counts/Gini, the
# digest-match and quantum-invariance flags — is exact.
serve_smoke() {
    local s1 s2 d1
    s1=$(mktemp) && s2=$(mktemp) && d1=$(mktemp) || return 1
    strip_serve_rates() {
        sed -E 's/"(serve_(events_per_sec|p99_latency_ms|hold_gini|wall_ms)[^"]*)":[-+0-9.eE]+/"\1":0/g' "$1"
    }
    cargo test --release -q -p mtmpi-serve \
        && cargo run --release -q -p mtmpi-bench --bin fig_serve -- --quick \
        && strip_serve_rates results/BENCH_fig_serve.json > "$s1" \
        && cp results/fig_serve.tenants.txt "$d1" \
        && cargo run --release -q -p mtmpi-bench --bin fig_serve -- --quick \
        && strip_serve_rates results/BENCH_fig_serve.json > "$s2" \
        && cmp "$s1" "$s2" \
        && cmp results/fig_serve.tenants.txt "$d1"
    local rc=$?
    rm -f "$s1" "$s2" "$d1"
    return $rc
}

# Live gate: the mtmpi-live integration tests, then fig2a twice under
# the online collector comparing the scheduler-trace hashes (same seed
# must replay the exact same decision sequence), then one headless
# `xtask watch` pass, which validates the .live.prom export.
live_smoke() {
    local h1 h2
    cargo test --release -q -p mtmpi-integration-tests --test live || return 1
    MTMPI_LIVE=1 cargo run --release -q -p mtmpi-bench --bin fig2a -- --quick || return 1
    h1=$(grep -o '"sched_trace_hash":"[0-9a-f]*"' results/BENCH_fig2a.json)
    [ -n "$h1" ] || { echo "no sched_trace_hash in BENCH_fig2a.json"; return 1; }
    MTMPI_LIVE=1 cargo run --release -q -p mtmpi-bench --bin fig2a -- --quick || return 1
    h2=$(grep -o '"sched_trace_hash":"[0-9a-f]*"' results/BENCH_fig2a.json)
    [ "$h1" = "$h2" ] || { echo "sched_trace_hash diverged between same-seed runs"; return 1; }
    cargo run -q -p xtask -- watch fig2a --headless
}

# Stream gate: the stream integration tests, then the fig_stream sweep
# twice with a byte-identity cmp (the lock-free fast path replays too).
stream_smoke() {
    local snap
    snap=$(mktemp) || return 1
    cargo test --release -q -p mtmpi-integration-tests --test streams \
        && cargo run --release -q -p mtmpi-bench --bin fig_stream -- --quick \
        && cp results/BENCH_fig_stream.json "$snap" \
        && cargo run --release -q -p mtmpi-bench --bin fig_stream -- --quick \
        && cmp results/BENCH_fig_stream.json "$snap"
    local rc=$?
    rm -f "$snap"
    return $rc
}

if [ "$FAST" = "fast" ]; then
    skip loom "fast mode"
    skip tsan "fast mode"
    skip miri "fast mode"
    skip obs "fast mode"
    skip prof "fast mode"
    skip faults "fast mode"
    skip vci "fast mode"
    skip stream "fast mode"
    skip scale "fast mode"
    skip serve "fast mode"
    skip live "fast mode"
else
    step loom cargo test -p mtmpi-locks --features loom-check --test loom
    step loom cargo test -p mtmpi-runtime --test loom_claim --test loom_stream
    step loom cargo test -p mtmpi-serve --test loom_state
    step obs cargo run -q -p xtask -- trace fig2a
    step prof cargo run -q -p xtask -- bench-diff --cross-core
    step faults faults_smoke
    step vci vci_smoke
    step stream stream_smoke
    step scale scale_smoke
    step serve serve_smoke
    step live live_smoke

    if ! cargo +nightly --version >/dev/null 2>&1; then
        skip tsan "no nightly toolchain"
        skip miri "no nightly toolchain"
    else
        # TSan is sharpest with an instrumented std; without rust-src,
        # fall back to the prebuilt std and suppress the known
        # uninstrumented-Mutex/Condvar false positives (see header
        # comment and scripts/tsan.supp).
        if rustc +nightly --print sysroot >/dev/null 2>&1 \
           && [ -d "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library" ]; then
            step tsan env RUSTFLAGS="-Zsanitizer=thread" \
                cargo +nightly test -p mtmpi-locks --lib \
                -Zbuild-std --target x86_64-unknown-linux-gnu
        else
            # -Cunsafe-allow-abi-mismatch: recent nightlies refuse to
            # link sanitized crates against the unsanitized prebuilt
            # std; the mismatch is exactly what this fallback accepts.
            step tsan env \
                RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
                TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/scripts/tsan.supp" \
                cargo +nightly test -p mtmpi-locks --lib \
                --target x86_64-unknown-linux-gnu
        fi

        if cargo +nightly miri --version >/dev/null 2>&1; then
            step miri env MIRIFLAGS="-Zmiri-ignore-leaks" \
                cargo +nightly miri test -p mtmpi-locks --lib
        else
            skip miri "miri component not installed"
        fi
    fi
fi

echo
if [ ${#SKIPPED[@]} -gt 0 ]; then
    echo "skipped:"
    for s in "${SKIPPED[@]}"; do echo "  - $s"; done
fi
if [ "$FAIL" -ne 0 ]; then
    echo "check.sh: FAILURES above"
    exit 1
fi
echo "check.sh: all runnable checks passed"
