#!/usr/bin/env bash
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(fig6b fig8a fig8b fig9 fig10a fig10b fig10c fig11a fig11b fig12b
      ablation_granularity ablation_locks ablation_selective)
cargo build --release -p mtmpi-bench 2>/dev/null
for b in "${BINS[@]}"; do
    echo "=== running $b ==="
    if ! timeout 1500 ./target/release/"$b" > "results/$b.txt" 2> "results/$b.log"; then
        echo "FAILED: $b (see results/$b.log)"
    else
        echo "ok: results/$b.txt"
    fi
done
echo REMAINING-DONE
